#include "core/scenario_store.hpp"

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include <sys/stat.h>

#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/metrics.hpp"

namespace vmcons::core {
namespace {

// File layout (host-endian, version 2):
//   header   "VMCSTOR1" | u32 version | u32 resource_count
//   shard*   u64 scenarios | u64 service_rows | columns (see write_shard)
//   footer   u64 shard_count | ShardInfo-per-shard as 6 x u64
//   trailer  u64 footer_offset | u64 footer_checksum | u64 scenario_count
//            | "VMCSEND1"
// Version 2 appends the fleet-class columns (class_begin offsets plus the
// per-class capacity/wattage/count/speed/name columns) to every shard
// payload. Version-1 files are still readable: they carry no class bytes,
// which deserializes as "no scenario owns a fleet".
constexpr char kHeaderMagic[8] = {'V', 'M', 'C', 'S', 'T', 'O', 'R', '1'};
constexpr char kTrailerMagic[8] = {'V', 'M', 'C', 'S', 'E', 'N', 'D', '1'};
constexpr std::uint32_t kFormatVersion = 2;
constexpr std::uint32_t kOldestReadableVersion = 1;
constexpr std::size_t kHeaderBytes = sizeof(kHeaderMagic) + 2 * sizeof(std::uint32_t);
constexpr std::size_t kTrailerBytes = 3 * sizeof(std::uint64_t) + sizeof(kTrailerMagic);
constexpr std::size_t kShardInfoFields = 6;

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw IoError("scenario store '" + path + "': " + what);
}

// Serializer into a flat byte buffer; the buffer is checksummed and written
// as one shard payload, so the checksum covers exactly what lands on disk.
class ByteSink {
 public:
  explicit ByteSink(std::vector<char>& out) : out_(out) {}

  void raw(const void* data, std::size_t bytes) {
    if (bytes == 0) {
      return;  // empty columns may hand over a null data()
    }
    const char* p = static_cast<const char*>(data);
    out_.insert(out_.end(), p, p + bytes);
  }
  void u32(std::uint32_t value) { raw(&value, sizeof value); }
  void u64(std::uint64_t value) { raw(&value, sizeof value); }
  void f64_column(const std::vector<double>& column) {
    raw(column.data(), column.size() * sizeof(double));
  }

 private:
  std::vector<char>& out_;
};

// Deserializer over a shard payload; every read is bounds-checked so a
// truncated or garbled payload surfaces as IoError, never as a wild read.
class ByteSource {
 public:
  ByteSource(const std::vector<char>& in, const std::string& path,
             std::size_t shard)
      : in_(in), path_(path), shard_(shard) {}

  void raw(void* data, std::size_t bytes) {
    if (bytes == 0) {
      return;  // empty columns may hand over a null data()
    }
    if (bytes > in_.size() - pos_) {
      std::ostringstream message;
      message << "shard " << shard_ << " payload is truncated (need " << bytes
              << " bytes at offset " << pos_ << " of " << in_.size() << ")";
      fail(path_, message.str());
    }
    std::memcpy(data, in_.data() + pos_, bytes);
    pos_ += bytes;
  }
  std::uint32_t u32() {
    std::uint32_t value = 0;
    raw(&value, sizeof value);
    return value;
  }
  std::uint64_t u64() {
    std::uint64_t value = 0;
    raw(&value, sizeof value);
    return value;
  }
  void f64_column(std::vector<double>& column, std::size_t count) {
    column.resize(count);
    raw(column.data(), count * sizeof(double));
  }
  std::size_t remaining() const { return in_.size() - pos_; }

 private:
  const std::vector<char>& in_;
  const std::string& path_;
  std::size_t shard_;
  std::size_t pos_ = 0;
};

void write_power_column(ByteSink& sink,
                        std::span<const dc::PowerModel> column) {
  for (const dc::PowerModel& model : column) {
    sink.raw(&model.base_watts, sizeof model.base_watts);
    sink.raw(&model.max_watts, sizeof model.max_watts);
    sink.u32(static_cast<std::uint32_t>(model.platform));
  }
}

void read_power_column(ByteSource& source, std::vector<dc::PowerModel>& column,
                       std::size_t count, const std::string& path,
                       std::size_t shard) {
  column.resize(count);
  for (dc::PowerModel& model : column) {
    source.raw(&model.base_watts, sizeof model.base_watts);
    source.raw(&model.max_watts, sizeof model.max_watts);
    const std::uint32_t platform = source.u32();
    if (platform > static_cast<std::uint32_t>(dc::Platform::kXen)) {
      std::ostringstream message;
      message << "shard " << shard << " holds unknown platform enum value "
              << platform;
      fail(path, message.str());
    }
    model.platform = static_cast<dc::Platform>(platform);
  }
}

// Serializes one batch's columns; the inverse of read_shard_payload.
std::vector<char> serialize_shard(const ScenarioBatch& batch) {
  std::vector<char> bytes;
  ByteSink sink(bytes);
  const std::size_t scenarios = batch.size();
  const std::size_t rows = batch.service_rows();
  sink.u64(scenarios);
  sink.u64(rows);
  for (std::size_t s = 0; s < scenarios; ++s) {
    const double loss = batch.target_loss(s);
    sink.raw(&loss, sizeof loss);
  }
  for (std::size_t s = 0; s < scenarios; ++s) {
    sink.u32(batch.vm_count(s));
  }
  write_power_column(sink, batch.dedicated_power());
  write_power_column(sink, batch.consolidated_power());
  for (std::size_t s = 0; s <= scenarios; ++s) {
    sink.u64(s == 0 ? 0 : batch.services_end(s - 1));
  }
  sink.raw(batch.arrival_rate().data(), rows * sizeof(double));
  for (const dc::Resource resource : dc::all_resources()) {
    sink.raw(batch.native_rate(resource).data(), rows * sizeof(double));
  }
  for (const dc::Resource resource : dc::all_resources()) {
    sink.raw(batch.impact(resource).data(), rows * sizeof(double));
  }
  sink.raw(batch.bottleneck_rate().data(), rows * sizeof(double));
  sink.raw(batch.effective_rate().data(), rows * sizeof(double));
  for (std::size_t row = 0; row < rows; ++row) {
    const std::string& name = batch.service_name(row);
    sink.u32(static_cast<std::uint32_t>(name.size()));
    sink.raw(name.data(), name.size());
  }
  // Version 2: fleet-class columns, mirroring the service-row scheme.
  const std::size_t class_rows = batch.class_rows();
  sink.u64(class_rows);
  for (std::size_t s = 0; s <= scenarios; ++s) {
    sink.u64(s == 0 ? 0 : batch.classes_end(s - 1));
  }
  for (const dc::Resource resource : dc::all_resources()) {
    sink.raw(batch.class_capacity(resource).data(),
             class_rows * sizeof(double));
  }
  sink.raw(batch.class_base_watts().data(), class_rows * sizeof(double));
  sink.raw(batch.class_max_watts().data(), class_rows * sizeof(double));
  sink.raw(batch.class_available().data(),
           class_rows * sizeof(std::uint64_t));
  sink.raw(batch.class_speed().data(), class_rows * sizeof(double));
  for (std::size_t row = 0; row < class_rows; ++row) {
    const std::string& name = batch.class_name(row);
    sink.u32(static_cast<std::uint32_t>(name.size()));
    sink.raw(name.data(), name.size());
  }
  return bytes;
}

ScenarioBatch deserialize_shard(const std::vector<char>& bytes,
                                const std::string& path, std::size_t shard,
                                const ShardInfo& info,
                                std::uint32_t version) {
  ByteSource source(bytes, path, shard);
  ScenarioBatch::Columns columns;
  const std::uint64_t scenarios = source.u64();
  const std::uint64_t rows = source.u64();
  if (scenarios != info.scenarios || rows != info.service_rows) {
    std::ostringstream message;
    message << "shard " << shard << " payload declares " << scenarios
            << " scenarios / " << rows << " rows but the footer recorded "
            << info.scenarios << " / " << info.service_rows;
    fail(path, message.str());
  }
  source.f64_column(columns.target_loss, scenarios);
  columns.vm_count.resize(scenarios);
  for (unsigned& v : columns.vm_count) {
    v = source.u32();
  }
  read_power_column(source, columns.dedicated_power, scenarios, path, shard);
  read_power_column(source, columns.consolidated_power, scenarios, path, shard);
  columns.row_begin.resize(scenarios + 1);
  for (std::size_t& offset : columns.row_begin) {
    offset = static_cast<std::size_t>(source.u64());
  }
  source.f64_column(columns.arrival_rate, rows);
  for (std::size_t r = 0; r < dc::kResourceCount; ++r) {
    source.f64_column(columns.native_rate[r], rows);
  }
  for (std::size_t r = 0; r < dc::kResourceCount; ++r) {
    source.f64_column(columns.impact[r], rows);
  }
  source.f64_column(columns.bottleneck_rate, rows);
  source.f64_column(columns.effective_rate, rows);
  columns.service_name.resize(rows);
  for (std::string& name : columns.service_name) {
    const std::uint32_t length = source.u32();
    name.resize(length);
    source.raw(name.data(), length);
  }
  if (version >= 2) {
    // Fleet-class columns; a version-1 payload simply ends here and
    // from_columns defaults the absent class_begin to all-zero offsets.
    const std::uint64_t class_rows = source.u64();
    columns.class_begin.resize(scenarios + 1);
    for (std::size_t& offset : columns.class_begin) {
      offset = static_cast<std::size_t>(source.u64());
    }
    for (std::size_t r = 0; r < dc::kResourceCount; ++r) {
      source.f64_column(columns.class_capacity[r], class_rows);
    }
    source.f64_column(columns.class_base_watts, class_rows);
    source.f64_column(columns.class_max_watts, class_rows);
    columns.class_count.resize(class_rows);
    for (std::uint64_t& count : columns.class_count) {
      count = source.u64();
    }
    source.f64_column(columns.class_speed, class_rows);
    columns.class_name.resize(class_rows);
    for (std::string& name : columns.class_name) {
      const std::uint32_t length = source.u32();
      name.resize(length);
      source.raw(name.data(), length);
    }
  }
  if (source.remaining() != 0) {
    std::ostringstream message;
    message << "shard " << shard << " payload has " << source.remaining()
            << " trailing bytes past the last column";
    fail(path, message.str());
  }
  // from_columns re-validates the structural invariants, so corruption that
  // happens to pass the checksum still cannot build an inconsistent batch.
  try {
    return ScenarioBatch::from_columns(std::move(columns));
  } catch (const Error& error) {
    std::ostringstream message;
    message << "shard " << shard << " deserialized into an invalid batch: "
            << error.what();
    fail(path, message.str());
  }
}

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                      std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

ScenarioStoreWriter::ScenarioStoreWriter(std::string path,
                                         std::size_t shard_size)
    : path_(std::move(path)), shard_size_(shard_size) {
  VMCONS_REQUIRE(shard_size_ > 0, "scenario store shard size must be >= 1");
  const util::fs::Status opened =
      util::fs::create_truncate(path_, util::fs::sites::kStoreOpen, file_);
  if (!opened.ok()) {
    fail(path_, "cannot open for writing: " + opened.message());
  }
  write_checked(kHeaderMagic, sizeof kHeaderMagic, util::fs::sites::kStoreOpen);
  const std::uint32_t version = kFormatVersion;
  const std::uint32_t resources = dc::kResourceCount;
  write_checked(&version, sizeof version, util::fs::sites::kStoreOpen);
  write_checked(&resources, sizeof resources, util::fs::sites::kStoreOpen);
}

ScenarioStoreWriter::~ScenarioStoreWriter() = default;

void ScenarioStoreWriter::write_checked(const void* data, std::size_t bytes,
                                        std::string_view site) {
  const util::fs::Status status =
      util::fs::write_all(file_, data, bytes, site);
  if (!status.ok()) {
    broken_ = true;
    std::ostringstream message;
    message << "write failed at offset " << (offset_ + status.bytes)
            << " (shard " << shards_.size() << ", "
            << status.bytes << " of " << bytes << " bytes landed): "
            << status.message();
    fail(path_, message.str());
  }
  offset_ += bytes;
}

std::size_t ScenarioStoreWriter::append(const ModelInputs& inputs) {
  VMCONS_ASSERT(!finished_);
  VMCONS_ASSERT(!broken_);
  buffer_.append(inputs);
  const std::size_t global = static_cast<std::size_t>(scenario_count_);
  ++scenario_count_;
  if (buffer_.size() >= shard_size_) {
    flush_shard();
  }
  return global;
}

void ScenarioStoreWriter::flush_shard() {
  if (buffer_.empty()) {
    return;
  }
  const std::vector<char> payload = serialize_shard(buffer_);
  ShardInfo info;
  info.offset = offset_;
  info.bytes = payload.size();
  info.scenarios = buffer_.size();
  info.service_rows = buffer_.service_rows();
  info.checksum = fnv1a64(payload.data(), payload.size());
  info.scenario_begin = scenario_count_ - buffer_.size();
  write_checked(payload.data(), payload.size(), util::fs::sites::kStoreShard);
  shards_.push_back(info);
  buffer_ = ScenarioBatch{};
  metrics::registry().counter(metrics::names::kStoreShardsWritten).add();
  metrics::registry()
      .counter(metrics::names::kStoreBytesWritten)
      .add(payload.size());
}

ScenarioStoreWriter::Summary ScenarioStoreWriter::finish() {
  VMCONS_ASSERT(!finished_);
  VMCONS_ASSERT(!broken_);
  finished_ = true;
  flush_shard();

  std::vector<char> footer;
  ByteSink sink(footer);
  sink.u64(shards_.size());
  for (const ShardInfo& info : shards_) {
    sink.u64(info.offset);
    sink.u64(info.bytes);
    sink.u64(info.scenarios);
    sink.u64(info.service_rows);
    sink.u64(info.checksum);
    sink.u64(info.scenario_begin);
  }
  const std::uint64_t footer_offset = offset_;
  const std::uint64_t footer_checksum = fnv1a64(footer.data(), footer.size());
  write_checked(footer.data(), footer.size(), util::fs::sites::kStoreFinish);
  // Commit-point ordering: everything up to and including the footer must be
  // on disk before the trailer that declares the file finished can land.
  // Otherwise a crash could leave a valid-looking trailer over unsynced
  // payload pages, and a reader would trust a file the disk never held.
  util::fs::Status synced =
      util::fs::fsync_file(file_, util::fs::sites::kStoreFinish);
  if (!synced.ok()) {
    broken_ = true;
    fail(path_, "fsync before the trailer failed: " + synced.message());
  }
  write_checked(&footer_offset, sizeof footer_offset,
                util::fs::sites::kStoreFinish);
  write_checked(&footer_checksum, sizeof footer_checksum,
                util::fs::sites::kStoreFinish);
  write_checked(&scenario_count_, sizeof scenario_count_,
                util::fs::sites::kStoreFinish);
  write_checked(kTrailerMagic, sizeof kTrailerMagic,
                util::fs::sites::kStoreFinish);
  synced = util::fs::fsync_file(file_, util::fs::sites::kStoreFinish);
  if (!synced.ok()) {
    broken_ = true;
    fail(path_, "fsync of the trailer failed: " + synced.message());
  }
  const util::fs::Status closed = file_.close();
  if (!closed.ok()) {
    broken_ = true;
    fail(path_, "close after finish failed: " + closed.message());
  }
  return Summary{scenario_count_, shards_.size(), footer_checksum};
}

ScenarioStore::ScenarioStore(std::string path) : path_(std::move(path)) {
  const util::fs::Status opened =
      util::fs::open_read(path_, util::fs::sites::kStoreRead, file_);
  if (!opened.ok()) {
    fail(path_, "cannot open for reading: " + opened.message());
  }
  struct ::stat st {};
  if (::fstat(file_.fd(), &st) != 0) {
    fail(path_, std::string("cannot stat: ") + std::strerror(errno));
  }
  const std::uint64_t file_bytes = static_cast<std::uint64_t>(st.st_size);
  if (file_bytes < kHeaderBytes + kTrailerBytes) {
    fail(path_, "file is too small to hold a header and trailer (truncated "
                "or never finished)");
  }

  // Validation reads are positional too, through the same checked pread
  // wrapper read_shard uses, so a torn header/trailer names its offset.
  const auto read_at = [&](void* data, std::size_t bytes,
                           std::uint64_t offset, const char* what) {
    const util::fs::Status status = util::fs::pread_all(
        file_, data, bytes, offset, util::fs::sites::kStoreRead);
    if (!status.ok()) {
      std::ostringstream message;
      message << what << " read failed at offset " << (offset + status.bytes)
              << ": " << status.message();
      fail(path_, message.str());
    }
  };

  char magic[8];
  std::uint32_t version = 0;
  std::uint32_t resources = 0;
  read_at(magic, sizeof magic, 0, "header magic");
  read_at(&version, sizeof version, sizeof magic, "header version");
  read_at(&resources, sizeof resources, sizeof magic + sizeof version,
          "header resource count");
  if (std::memcmp(magic, kHeaderMagic, sizeof magic) != 0) {
    fail(path_, "bad header magic (not a scenario store)");
  }
  if (version < kOldestReadableVersion || version > kFormatVersion) {
    fail(path_, "unsupported format version " + std::to_string(version) +
                    " (this build reads versions " +
                    std::to_string(kOldestReadableVersion) + ".." +
                    std::to_string(kFormatVersion) + ")");
  }
  version_ = version;
  if (resources != dc::kResourceCount) {
    std::ostringstream message;
    message << "written with " << resources << " resource kinds, this build "
            << "has " << dc::kResourceCount;
    fail(path_, message.str());
  }

  std::uint64_t footer_offset = 0;
  std::uint64_t footer_checksum = 0;
  const std::uint64_t trailer_at = file_bytes - kTrailerBytes;
  read_at(&footer_offset, sizeof footer_offset, trailer_at, "trailer");
  read_at(&footer_checksum, sizeof footer_checksum,
          trailer_at + sizeof footer_offset, "trailer");
  read_at(&scenario_count_, sizeof scenario_count_,
          trailer_at + 2 * sizeof footer_offset, "trailer");
  read_at(magic, sizeof magic, trailer_at + 3 * sizeof footer_offset,
          "trailer magic");
  if (std::memcmp(magic, kTrailerMagic, sizeof magic) != 0) {
    fail(path_, "bad trailer magic (truncated file or unfinished writer)");
  }
  if (footer_offset < kHeaderBytes ||
      footer_offset > file_bytes - kTrailerBytes) {
    fail(path_, "trailer points the footer outside the file");
  }

  const std::size_t footer_bytes =
      static_cast<std::size_t>(file_bytes - kTrailerBytes - footer_offset);
  std::vector<char> footer(footer_bytes);
  read_at(footer.data(), footer_bytes, footer_offset, "footer");
  if (fnv1a64(footer.data(), footer.size()) != footer_checksum) {
    fail(path_, "footer checksum mismatch (corrupted file)");
  }
  checksum_ = footer_checksum;

  ByteSource source(footer, path_, 0);
  const std::uint64_t shard_count = source.u64();
  if (footer_bytes !=
      sizeof(std::uint64_t) * (1 + kShardInfoFields * shard_count)) {
    fail(path_, "footer size disagrees with its shard count");
  }
  std::uint64_t scenarios_seen = 0;
  shards_.reserve(static_cast<std::size_t>(shard_count));
  for (std::uint64_t i = 0; i < shard_count; ++i) {
    ShardInfo info;
    info.offset = source.u64();
    info.bytes = source.u64();
    info.scenarios = source.u64();
    info.service_rows = source.u64();
    info.checksum = source.u64();
    info.scenario_begin = source.u64();
    if (info.offset < kHeaderBytes || info.bytes > footer_offset ||
        info.offset > footer_offset - info.bytes) {
      std::ostringstream message;
      message << "footer places shard " << i << " outside the payload region";
      fail(path_, message.str());
    }
    if (info.scenario_begin != scenarios_seen || info.scenarios == 0) {
      std::ostringstream message;
      message << "footer shard " << i << " breaks the scenario numbering at "
              << scenarios_seen;
      fail(path_, message.str());
    }
    scenarios_seen += info.scenarios;
    shards_.push_back(info);
  }
  if (scenarios_seen != scenario_count_) {
    std::ostringstream message;
    message << "footer shards sum to " << scenarios_seen
            << " scenarios but the trailer recorded " << scenario_count_;
    fail(path_, message.str());
  }
}

ScenarioStore::~ScenarioStore() = default;

const ShardInfo& ScenarioStore::shard(std::size_t index) const {
  VMCONS_REQUIRE(index < shards_.size(),
                 "shard index " + std::to_string(index) + " out of range (" +
                     std::to_string(shards_.size()) + " shards)");
  return shards_[index];
}

ScenarioBatch ScenarioStore::read_shard(std::size_t index) const {
  const ShardInfo& info = shard(index);
  std::vector<char> payload(static_cast<std::size_t>(info.bytes));
  // pread: the offset travels with each call, never with the fd, so any
  // number of concurrent read_shard calls share the descriptor safely.
  const util::fs::Status status =
      util::fs::pread_all(file_, payload.data(), payload.size(), info.offset,
                          util::fs::sites::kStoreRead);
  if (!status.ok()) {
    std::ostringstream message;
    message << "shard " << index << " pread failed at offset "
            << (info.offset + status.bytes) << ": "
            << (status.err == ENODATA
                    ? "hit end-of-file (file shrank since open?)"
                    : status.message());
    fail(path_, message.str());
  }
  const std::uint64_t actual = fnv1a64(payload.data(), payload.size());
  if (actual != info.checksum) {
    std::ostringstream message;
    message << "shard " << index << " checksum mismatch (footer "
            << std::hex << info.checksum << ", payload " << actual << std::dec
            << " over " << info.bytes << " bytes at offset " << info.offset
            << "): corrupted payload";
    fail(path_, message.str());
  }
  metrics::registry().counter(metrics::names::kStoreShardsRead).add();
  metrics::registry()
      .counter(metrics::names::kStoreBytesRead)
      .add(payload.size());
  return deserialize_shard(payload, path_, index, info, version_);
}

}  // namespace vmcons::core
