// Out-of-core sweeps: shard-by-shard evaluation with checkpoint/resume.
//
// ScenarioStore (scenario_store.hpp) bounds the *space* of a huge sweep;
// StreamingSweep bounds its *risk*. The driver walks a store shard at a
// time — materialize one shard as a ScenarioBatch, run BatchEvaluator on it
// (inner parallelism, quarantine, run control all apply per shard), deliver
// the shard's results to a sink, drop them — so resident memory is one
// shard's inputs plus one shard's results no matter how many millions of
// scenarios the store holds. The memoized Erlang kernel's published
// snapshot tier persists across shards, so later shards reuse every
// recursion prefix earlier shards staffed.
//
// After each completed shard the driver appends a record to a sidecar
// *checkpoint manifest* (CSV, written via util CsvWriter and flushed per
// shard): the shard's quarantined CellFailures (global scenario indices)
// followed by one `shard` row carrying the store's checksum and an FNV-1a
// checksum of the shard's results. A sweep that is cancelled, hits its
// deadline, or dies outright can then be re-run with the same options: the
// manifest is loaded, shards it records as complete are skipped (their
// failures and result checksums are restored from the manifest), and
// evaluation resumes at the first uncommitted shard — producing results
// bit-identical to an uninterrupted run, which the manifest's per-shard
// result checksums make checkable.
//
// Crash tolerance of the manifest itself: a process killed mid-append
// leaves a partial trailing line (no final newline) — that line is
// discarded on load, sacrificing at most one shard of progress. A complete
// but garbled line is corruption, not a crash artifact, and throws IoError.
// A manifest whose store checksum disagrees with the store refuses to
// resume (it checkpoints some other sweep).
//
// The manifest has exactly one writer: a checkpointing run() holds an
// exclusive pid lock (`<checkpoint_path>.lock`) for its duration, so a
// second sweep pointed at the same checkpoint fails fast with IoError
// instead of interleaving rows. A lock whose pid is dead (the crashed-sweep
// case) is detected as stale and taken over. Multi-process sharded sweeps
// should not share a manifest at all — see core/sharded_sweep.hpp, whose
// claim ledger is built for concurrent writers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/batch_eval.hpp"
#include "core/scenario_store.hpp"
#include "core/sweep.hpp"
#include "util/run_control.hpp"

namespace vmcons::core {

class ConsolidationPlanner;

/// Enumerates `grid` against `planner` (ConsolidationPlanner::point_inputs
/// per point, in index order) straight into a store file, one shard every
/// `shard_size` points — the grid is never materialized in memory. The
/// control is polled between shards; a stop raises CancelledError /
/// DeadlineExceededError and leaves an unfinished (unopenable) store.
ScenarioStoreWriter::Summary write_sweep_store(
    const ConsolidationPlanner& planner, const SweepGrid& grid,
    const std::string& path, std::size_t shard_size,
    const RunControl& control = {});

/// Order-sensitive FNV-1a digest of a shard's results: each evaluated flag,
/// then for evaluated cells every numeric field of the ModelResult (plans
/// included) in a fixed canonical order. Two shards agree iff their results
/// are bit-identical, which is what the manifest's result checksums assert
/// across kill/resume boundaries.
std::uint64_t checksum_model_results(std::span<const ModelResult> results,
                                     std::span<const std::uint8_t> evaluated);

/// One store shard's evaluation, as delivered to the sink. `outcome`
/// indexes scenarios shard-locally; add `scenario_begin` for global indices.
struct ShardOutcome {
  std::size_t shard_index = 0;
  std::size_t scenario_begin = 0;
  BatchOutcome outcome;
  std::uint64_t result_checksum = 0;
};

/// Called once per *newly evaluated* shard, in shard order. Shards skipped
/// via the manifest are not re-materialized and not delivered — a resumed
/// run's sink sees exactly the shards the interrupted run did not commit.
using ShardSink = std::function<void(ShardOutcome&&)>;

struct StreamingSweepOptions {
  /// Per-shard evaluation knobs. policy/parallel/kernel/pool behave as in
  /// BatchEvaluator; control stops the sweep between shards (and within a
  /// shard, via the evaluator) without losing committed shards.
  BatchOptions batch;
  /// Sidecar manifest path; empty disables checkpointing (every run starts
  /// from shard 0 and nothing is written).
  std::string checkpoint_path;
  /// Load an existing manifest and skip its committed shards. When false an
  /// existing manifest is overwritten and the sweep starts clean.
  bool resume = true;
};

/// What a streaming sweep did. Failures carry *global* scenario indices;
/// shard_checksums[i] is shard i's result digest (present for both resumed
/// and newly evaluated shards, so a clean run and a killed-then-resumed run
/// can be compared checksum-for-checksum).
struct StreamingSweepReport {
  std::size_t shards_total = 0;
  std::size_t shards_resumed = 0;    ///< skipped via the manifest
  std::size_t shards_completed = 0;  ///< evaluated and committed this run
  std::uint64_t scenarios_evaluated = 0;
  std::vector<CellFailure> failures;
  std::vector<std::uint64_t> shard_checksums;
  bool cancelled = false;
  bool deadline_exceeded = false;

  /// Every shard committed (resumed or evaluated), no stop.
  bool complete() const noexcept {
    return shards_resumed + shards_completed == shards_total && !cancelled &&
           !deadline_exceeded;
  }
};

class StreamingSweep {
 public:
  explicit StreamingSweep(StreamingSweepOptions options);

  /// Runs the sweep over `store`, delivering newly evaluated shards to
  /// `sink` (which may be null). Stops — cancellation, deadline — are
  /// reported in the returned flags, not thrown, and never lose committed
  /// shards. Throws IoError for store/manifest corruption and propagates
  /// evaluation exceptions under FailurePolicy::kFailFast; in both cases
  /// the manifest still holds every shard committed before the throw.
  StreamingSweepReport run(const ScenarioStore& store,
                           const ShardSink& sink = nullptr) const;

 private:
  StreamingSweepOptions options_;
};

}  // namespace vmcons::core
