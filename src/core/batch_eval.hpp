// Batch evaluation of the utility analytic model over columnar scenarios.
//
// The Fig. 4 staffing algorithm, the Eq. 8-11 utilization derivation, and
// the Eq. 12-14 power derivation are implemented as four stateless,
// span-based kernels over a ScenarioBatch. Each kernel stages its Erlang-B
// work: it first gathers every query in its scenario range into one flat
// list, answers them through the kernel's batched entry points (which sort
// by offered load so the memoized recursion prefixes are walked
// monotonically), then scatters the answers back into ModelResults. The
// scalar UtilityAnalyticModel::solve() runs the same four kernels on a
// batch of one, so batch and scalar results are bit-identical by
// construction — there is exactly one implementation of the math.
//
// BatchEvaluator shards a batch over a thread pool (each shard is a
// contiguous scenario range, so output is independent of the worker count).
// Each shard stages and sorts its own query spans and walks them against
// the kernel's lock-free snapshot tier plus its worker's private extension
// arena — no cross-shard lock. Batch completion is a merge-epoch boundary:
// the evaluator calls ErlangKernel::publish() so the next batch starts with
// every prefix in the snapshot tier. batch.* metrics report evaluations,
// scenarios, shards, kernel cache hits/misses attributable to the batch,
// and the end-of-batch merge cost (batch.lock_wait).
// Fault tolerance (see util/run_control.hpp): BatchOptions carries a
// RunControl and a FailurePolicy. Under kQuarantine a throwing scenario is
// isolated — the shard that contained it falls back to cell-at-a-time
// evaluation (each cell is a batch of one, so healthy cells stay
// bit-identical to a clean run), and the failure is recorded as a
// structured CellFailure instead of aborting the batch. Cancellation and
// deadlines are checked between shards (and between parallel_for chunks),
// so abort latency is bounded by one shard's work.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "core/scenario_batch.hpp"
#include "util/run_control.hpp"

namespace vmcons {
class ThreadPool;
namespace queueing {
class ErlangKernel;
}  // namespace queueing
}  // namespace vmcons

namespace vmcons::core {

/// What a BatchEvaluator does with a scenario whose evaluation throws.
enum class FailurePolicy {
  /// Propagate the first failure as an exception (the pre-quarantine
  /// behavior). Right for interactive plans, where one scenario is the
  /// whole job and a wrong input should be loud.
  kFailFast,
  /// Record the failure as a CellFailure, keep every other cell. Right for
  /// large sweeps, where one degenerate corner must not destroy a
  /// multi-million-cell run.
  kQuarantine,
};

/// One scenario that failed under FailurePolicy::kQuarantine.
struct CellFailure {
  std::size_t scenario_index = 0;
  ErrorCode code = ErrorCode::kUnknown;
  std::string message;
};

/// Everything a fault-tolerant batch evaluation produced. `results[i]` is
/// meaningful iff `evaluated[i]`; failed cells keep a default ModelResult
/// and appear in `failures` (sorted by scenario index); cells that were
/// never reached because of a stop are neither evaluated nor failed.
struct BatchOutcome {
  std::vector<ModelResult> results;
  std::vector<CellFailure> failures;
  std::vector<std::uint8_t> evaluated;  ///< 1 per successfully solved cell
  bool cancelled = false;               ///< aborted by the CancelToken
  bool deadline_exceeded = false;       ///< aborted by the Deadline

  std::size_t evaluated_count() const noexcept {
    std::size_t n = 0;
    for (const std::uint8_t e : evaluated) {
      n += e;
    }
    return n;
  }
  /// Every cell solved: no failures, no abort.
  bool complete() const noexcept {
    return failures.empty() && !cancelled && !deadline_exceeded;
  }
};

/// Execution knobs for BatchEvaluator.
struct BatchOptions {
  /// Fan shards out over a thread pool (results stay in scenario order and
  /// bit-identical to a serial run).
  bool parallel = true;
  /// Route Erlang-B evaluations through a memoized incremental kernel.
  bool memoize = true;
  /// Kernel override (implies memoize); nullptr uses the process-wide
  /// ErlangKernel::shared() when memoize is set.
  queueing::ErlangKernel* kernel = nullptr;
  /// Scenarios per shard; 0 auto-sizes to ~4 shards per active worker.
  std::size_t shard_size = 0;
  /// Minimum scenarios each worker must be able to claim before the batch
  /// fans out over the pool at all. Tiny batches pay more in pool dispatch
  /// and per-shard staging than the parallelism returns (the 1-core bench
  /// showed 8 injected workers at 0.6x of 1), so below the threshold the
  /// batch runs serially on the calling thread and the shard auto-size
  /// targets only the workers that can earn their keep. 0 disables the
  /// threshold. Results are bit-identical either way — sharding never
  /// changes answers, only who computes them.
  std::size_t min_scenarios_per_worker = 32;
  /// Pool to shard over; nullptr uses ThreadPool::shared(). Benches inject
  /// fixed-size pools here to measure thread scaling reproducibly.
  ThreadPool* pool = nullptr;
  /// Failure handling; see FailurePolicy.
  FailurePolicy policy = FailurePolicy::kFailFast;
  /// Cooperative cancellation + deadline; the embedded token shares state
  /// with the caller's copy, so the caller can abort a running batch.
  RunControl control;
};

/// Evaluates whole ScenarioBatches; the batch-first face of the model.
class BatchEvaluator {
 public:
  explicit BatchEvaluator(BatchOptions options = {}) : options_(options) {}

  /// One ModelResult per scenario, in scenario order. Bit-identical to
  /// calling UtilityAnalyticModel::solve() per scenario. Throws
  /// CancelledError / DeadlineExceededError if the RunControl aborted the
  /// batch; under kFailFast the first cell failure propagates, under
  /// kQuarantine failed cells silently keep default results (use
  /// evaluate_all when the failure report matters).
  std::vector<ModelResult> evaluate(const ScenarioBatch& batch) const;

  /// The fault-tolerant face: never throws for per-cell failures or stops;
  /// everything is reported in the BatchOutcome. Under kFailFast a cell
  /// failure still propagates as an exception.
  BatchOutcome evaluate_all(const ScenarioBatch& batch) const;

  const BatchOptions& options() const { return options_; }

 private:
  BatchOptions options_;
};

// --- The stateless span kernels shared by the scalar and batch paths -----
// Each runs one stage of the model for scenarios [begin, end) of `batch`,
// writing into results[s - begin]. `kernel` may be nullptr (stateless free
// functions). Call order per scenario range: staff_dedicated,
// staff_consolidated, staff_fleet, derive_utility, derive_power.
namespace batch_kernels {

/// Fig. 4 per-service staffing: per-resource Erlang-B sizing, max over
/// resources, sum over services (M), plus per-service blocking at the
/// granted staffing.
void staff_dedicated(const ScenarioBatch& batch, std::size_t begin,
                     std::size_t end, queueing::ErlangKernel* kernel,
                     std::span<ModelResult> results);

/// Merged-stream staffing (Eq. 4-5): per-resource effective service rate,
/// Erlang-B sizing, max over resources (N), and the worst-resource blocking
/// at N.
void staff_consolidated(const ScenarioBatch& batch, std::size_t begin,
                        std::size_t end, queueing::ErlangKernel* kernel,
                        std::span<ModelResult> results);

/// Heterogeneous fleet allocation: maps the reference-unit answers M and N
/// (written by the two staffing kernels) onto per-class physical counts for
/// every scenario in the range that carries fleet-class rows. Classes are
/// filled fastest first (greedy on ServerClass::speed()), which yields the
/// minimal physical count and keeps totals monotone when a class is added;
/// ties break on reference-equivalents per peak watt, then name, then
/// declaration order, so the plan is deterministic. Scenarios without a
/// fleet are untouched (their FleetPlan stays unplanned).
void staff_fleet(const ScenarioBatch& batch, std::size_t begin,
                 std::size_t end, std::span<ModelResult> results);

/// Eq. 8-11: offered bottleneck work per server for both deployments.
void derive_utility(const ScenarioBatch& batch, std::size_t begin,
                    std::size_t end, std::span<ModelResult> results);

/// Eq. 12-14: linear power model applied over the shard's utilization span,
/// plus the power/infrastructure saving ratios.
void derive_power(const ScenarioBatch& batch, std::size_t begin,
                  std::size_t end, std::span<ModelResult> results);

}  // namespace batch_kernels

}  // namespace vmcons::core
