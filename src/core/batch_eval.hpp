// Batch evaluation of the utility analytic model over columnar scenarios.
//
// The Fig. 4 staffing algorithm, the Eq. 8-11 utilization derivation, and
// the Eq. 12-14 power derivation are implemented as four stateless,
// span-based kernels over a ScenarioBatch. Each kernel stages its Erlang-B
// work: it first gathers every query in its scenario range into one flat
// list, answers them through the kernel's batched entry points (which sort
// by offered load so the memoized recursion prefixes are walked
// monotonically), then scatters the answers back into ModelResults. The
// scalar UtilityAnalyticModel::solve() runs the same four kernels on a
// batch of one, so batch and scalar results are bit-identical by
// construction — there is exactly one implementation of the math.
//
// BatchEvaluator shards a batch over a thread pool (each shard is a
// contiguous scenario range, so output is independent of the worker count).
// Each shard stages and sorts its own query spans and walks them against
// the kernel's lock-free snapshot tier plus its worker's private extension
// arena — no cross-shard lock. Batch completion is a merge-epoch boundary:
// the evaluator calls ErlangKernel::publish() so the next batch starts with
// every prefix in the snapshot tier. batch.* metrics report evaluations,
// scenarios, shards, kernel cache hits/misses attributable to the batch,
// and the end-of-batch merge cost (batch.lock_wait).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/model.hpp"
#include "core/scenario_batch.hpp"

namespace vmcons {
class ThreadPool;
namespace queueing {
class ErlangKernel;
}  // namespace queueing
}  // namespace vmcons

namespace vmcons::core {

/// Execution knobs for BatchEvaluator.
struct BatchOptions {
  /// Fan shards out over a thread pool (results stay in scenario order and
  /// bit-identical to a serial run).
  bool parallel = true;
  /// Route Erlang-B evaluations through a memoized incremental kernel.
  bool memoize = true;
  /// Kernel override (implies memoize); nullptr uses the process-wide
  /// ErlangKernel::shared() when memoize is set.
  queueing::ErlangKernel* kernel = nullptr;
  /// Scenarios per shard; 0 auto-sizes to ~4 shards per pool worker.
  std::size_t shard_size = 0;
  /// Pool to shard over; nullptr uses ThreadPool::shared(). Benches inject
  /// fixed-size pools here to measure thread scaling reproducibly.
  ThreadPool* pool = nullptr;
};

/// Evaluates whole ScenarioBatches; the batch-first face of the model.
class BatchEvaluator {
 public:
  explicit BatchEvaluator(BatchOptions options = {}) : options_(options) {}

  /// One ModelResult per scenario, in scenario order. Bit-identical to
  /// calling UtilityAnalyticModel::solve() per scenario.
  std::vector<ModelResult> evaluate(const ScenarioBatch& batch) const;

  const BatchOptions& options() const { return options_; }

 private:
  BatchOptions options_;
};

// --- The stateless span kernels shared by the scalar and batch paths -----
// Each runs one stage of the model for scenarios [begin, end) of `batch`,
// writing into results[s - begin]. `kernel` may be nullptr (stateless free
// functions). Call order per scenario range: staff_dedicated,
// staff_consolidated, derive_utility, derive_power.
namespace batch_kernels {

/// Fig. 4 per-service staffing: per-resource Erlang-B sizing, max over
/// resources, sum over services (M), plus per-service blocking at the
/// granted staffing.
void staff_dedicated(const ScenarioBatch& batch, std::size_t begin,
                     std::size_t end, queueing::ErlangKernel* kernel,
                     std::span<ModelResult> results);

/// Merged-stream staffing (Eq. 4-5): per-resource effective service rate,
/// Erlang-B sizing, max over resources (N), and the worst-resource blocking
/// at N.
void staff_consolidated(const ScenarioBatch& batch, std::size_t begin,
                        std::size_t end, queueing::ErlangKernel* kernel,
                        std::span<ModelResult> results);

/// Eq. 8-11: offered bottleneck work per server for both deployments.
void derive_utility(const ScenarioBatch& batch, std::size_t begin,
                    std::size_t end, std::span<ModelResult> results);

/// Eq. 12-14: linear power model applied over the shard's utilization span,
/// plus the power/infrastructure saving ratios.
void derive_power(const ScenarioBatch& batch, std::size_t begin,
                  std::size_t end, std::span<ModelResult> results);

}  // namespace batch_kernels

}  // namespace vmcons::core
