#include "core/multitier.hpp"

#include "util/error.hpp"
#include "virt/impact.hpp"

namespace vmcons::core {

std::vector<dc::ServiceSpec> MultiTierService::expand() const {
  VMCONS_REQUIRE(arrival_rate > 0.0,
                 "multi-tier service '" + name + "' needs arrival rate > 0");
  VMCONS_REQUIRE(!tiers.empty(),
                 "multi-tier service '" + name + "' has no tiers");
  std::vector<dc::ServiceSpec> specs;
  specs.reserve(tiers.size());
  for (const Tier& tier : tiers) {
    VMCONS_REQUIRE(tier.calls_per_request > 0.0,
                   "tier '" + tier.spec.name + "' needs calls_per_request > 0");
    dc::ServiceSpec spec = tier.spec;
    spec.name = name + "/" + tier.spec.name;
    spec.arrival_rate = arrival_rate * tier.calls_per_request;
    specs.push_back(std::move(spec));
  }
  return specs;
}

dc::ServiceSpec MultiTierService::integral_equivalent(
    double integral_impact) const {
  VMCONS_REQUIRE(integral_impact > 0.0 && integral_impact <= 1.0,
                 "integral impact must be in (0, 1]");
  VMCONS_REQUIRE(!tiers.empty(),
                 "multi-tier service '" + name + "' has no tiers");
  // Per resource: a front-end request demands sum_t calls_t / mu_tj seconds,
  // so the integral per-request rate is the harmonic aggregate.
  dc::ServiceSpec integral;
  integral.name = name + "/integral";
  integral.arrival_rate = arrival_rate;
  for (const dc::Resource resource : dc::all_resources()) {
    double seconds_per_request = 0.0;
    for (const Tier& tier : tiers) {
      const double mu = tier.spec.native_rates[resource];
      if (mu > 0.0) {
        seconds_per_request += tier.calls_per_request / mu;
      }
    }
    if (seconds_per_request > 0.0) {
      integral.demand(resource, 1.0 / seconds_per_request,
                      virt::Impact::constant(integral_impact));
    }
  }
  return integral;
}

ModelResult plan_multitier(const std::vector<MultiTierService>& services,
                           double target_loss) {
  VMCONS_REQUIRE(!services.empty(), "no services to plan");
  ModelInputs inputs;
  inputs.target_loss = target_loss;
  for (const auto& service : services) {
    for (auto& spec : service.expand()) {
      inputs.services.push_back(std::move(spec));
    }
  }
  // Each consolidated host carries one VM per tier instance.
  inputs.vms_per_server = static_cast<unsigned>(inputs.services.size());
  return UtilityAnalyticModel(inputs).solve();
}

ModelResult plan_integral(const std::vector<MultiTierService>& services,
                          double target_loss, double integral_impact) {
  VMCONS_REQUIRE(!services.empty(), "no services to plan");
  ModelInputs inputs;
  inputs.target_loss = target_loss;
  for (const auto& service : services) {
    inputs.services.push_back(service.integral_equivalent(integral_impact));
  }
  inputs.vms_per_server = static_cast<unsigned>(inputs.services.size());
  return UtilityAnalyticModel(inputs).solve();
}

MultiTierService paper_ecommerce_application(double arrival_rate,
                                             double db_calls) {
  VMCONS_REQUIRE(db_calls > 0.0, "db_calls must be positive");
  MultiTierService application;
  application.name = "ecommerce";
  application.arrival_rate = arrival_rate;

  Tier web;
  web.spec.name = "web";
  web.spec.demand(dc::Resource::kDiskIo, 420.0,
                  virt::Impact::paper_web_disk_io());
  web.spec.demand(dc::Resource::kCpu, 3360.0, virt::Impact::paper_web_cpu());
  web.calls_per_request = 1.0;
  application.tiers.push_back(std::move(web));

  Tier db;
  db.spec.name = "db";
  db.spec.demand(dc::Resource::kCpu, 100.0, virt::Impact::paper_db_cpu());
  db.calls_per_request = db_calls;
  application.tiers.push_back(std::move(db));
  return application;
}

}  // namespace vmcons::core
