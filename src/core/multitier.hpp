// Multi-tier service planning.
//
// Section II-A of the paper criticizes integral (whole-application)
// virtualization evaluation for multi-tier services: "different tiers of a
// multi-tiered service have various characteristics on resource
// requirement, which results in various performance impacts". This module
// makes that concrete: a MultiTierService decomposes into per-tier
// ServiceSpecs (each tier with its own resource demands and impact curves),
// and the planner treats the tiers as additional concurrent services of the
// utility analytic model — versus the "integral" alternative that lumps the
// whole application behind one bottleneck rate and one impact factor.
#pragma once

#include <string>
#include <vector>

#include "core/model.hpp"
#include "datacenter/service_spec.hpp"

namespace vmcons::core {

struct Tier {
  dc::ServiceSpec spec;  ///< per-tier demands/impacts; arrival_rate ignored
  /// Tier requests triggered per front-end request (e.g. one page view
  /// issues 1 web-tier request and 2.3 DB-tier queries on average).
  double calls_per_request = 1.0;
};

struct MultiTierService {
  std::string name;
  double arrival_rate = 0.0;  ///< front-end request rate
  std::vector<Tier> tiers;

  /// Expands into one ServiceSpec per tier with arrival rate
  /// arrival_rate * calls_per_request (requests are assumed to fan out
  /// independently, the standard open-network approximation).
  std::vector<dc::ServiceSpec> expand() const;

  /// The "integral" alternative the paper criticizes: one ServiceSpec whose
  /// per-resource rates are the harmonic aggregate of the tiers (the rate a
  /// request sees when its per-tier demands are summed) and whose impact
  /// factor is the single application-level ratio `integral_impact`.
  dc::ServiceSpec integral_equivalent(double integral_impact) const;
};

/// Plans a set of multi-tier services with per-tier granularity: every tier
/// of every service becomes a concurrent service of the model.
ModelResult plan_multitier(const std::vector<MultiTierService>& services,
                           double target_loss);

/// Plans the same services the integral way (one spec per service). Used by
/// the ablation to show how integral evaluation mis-sizes the plan.
ModelResult plan_integral(const std::vector<MultiTierService>& services,
                          double target_loss, double integral_impact);

/// The paper's running example as a multi-tier service: an e-commerce
/// application with a Web tier (disk+CPU, Fig. 5/6 impacts) and a DB tier
/// (CPU, Fig. 8 impact), `db_calls` DB queries per page view.
MultiTierService paper_ecommerce_application(double arrival_rate,
                                             double db_calls = 0.25);

}  // namespace vmcons::core
