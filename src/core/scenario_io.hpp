// Scenario files: declare services, workloads, and targets in INI form and
// plan without recompiling. Used by examples/plan_from_file and any CLI
// integration a downstream user builds.
//
// Format (see examples/scenarios/case_study.ini):
//
//   [plan]
//   target_loss = 0.01
//   vms_per_server = 2          ; optional
//
//   [service]
//   name = web
//   arrival_rate = 127.7        ; or: dedicated_servers = 3 (intensive pick)
//   cpu_rate = 3360             ; native mu per resource (0/absent = none)
//   cpu_impact = 0.65           ; constant impact factor (default 1)
//   disk_rate = 420
//   disk_impact = 0.8
//
//   [server_class]              ; optional heterogeneous inventory
//   name = dual-quad
//   capacity = 1.0
//   available = 4
//
//   [class.old-gen]             ; optional model-level fleet class
//   capacity = 0.5              ; uniform capacity vs the reference server
//   cpu_capacity = 0.6          ; per-resource override (default: capacity)
//   base_watts = 180            ; this class's S_base/S_max pair
//   max_watts = 210
//   count = 12                  ; owned servers (omit for unbounded)
#pragma once

#include <string>

#include "core/model.hpp"
#include "core/planner.hpp"
#include "util/ini.hpp"

namespace vmcons::core {

/// Builds model inputs from a parsed scenario document.
ModelInputs scenario_inputs(const IniDocument& document);

/// Builds a full planner (inputs + inventory) from a scenario document.
ConsolidationPlanner scenario_planner(const IniDocument& document);

/// Convenience: parse a file and build the planner.
ConsolidationPlanner load_scenario(const std::string& path);

/// Serializes model inputs back to scenario-INI text (round-trip support).
std::string scenario_to_ini(const ModelInputs& inputs);

}  // namespace vmcons::core
