#include "core/robust.hpp"

#include <algorithm>
#include <cmath>

#include "core/batch_eval.hpp"
#include "core/scenario_batch.hpp"
#include "util/error.hpp"
#include "util/parallel_for.hpp"
#include "util/rng.hpp"
#include "virt/impact.hpp"

namespace vmcons::core {
namespace {

/// Lognormal multiplier with mean 1 and the given coefficient of variation.
double lognormal_factor(double cv, Rng& rng) {
  if (cv <= 0.0) {
    return 1.0;
  }
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = -0.5 * sigma2;
  return std::exp(rng.normal(mu, std::sqrt(sigma2)));
}

}  // namespace

ModelInputs perturb_inputs(const ModelInputs& inputs,
                           const ParameterUncertainty& uncertainty, Rng& rng) {
  VMCONS_REQUIRE(uncertainty.arrival_cv >= 0.0 &&
                     uncertainty.service_cv >= 0.0 &&
                     uncertainty.impact_sd >= 0.0,
                 "uncertainty parameters must be >= 0");
  ModelInputs sample = inputs;
  const unsigned vm_count =
      inputs.vms_per_server.value_or(
          static_cast<unsigned>(inputs.services.size()));
  for (auto& service : sample.services) {
    service.arrival_rate *= lognormal_factor(uncertainty.arrival_cv, rng);
    for (const dc::Resource resource : dc::all_resources()) {
      const double mu = service.native_rates[resource];
      if (mu <= 0.0) {
        continue;
      }
      const double perturbed_mu =
          mu * lognormal_factor(uncertainty.service_cv, rng);
      // Perturb the impact factor at the planning VM count and freeze it as
      // a constant: the sampled world has one concrete (mu, a) pair.
      double factor = service.impact_factor(resource, vm_count);
      if (uncertainty.impact_sd > 0.0) {
        factor = std::clamp(factor + rng.normal(0.0, uncertainty.impact_sd),
                            virt::Impact::kMinFactor, 1.0);
      }
      service.demand(resource, perturbed_mu, virt::Impact::constant(factor));
    }
  }
  return sample;
}

RobustPlan robust_consolidated_plan(const ModelInputs& inputs,
                                    const ParameterUncertainty& uncertainty,
                                    std::size_t samples, std::uint64_t seed,
                                    double quantile,
                                    const RunControl& control) {
  VMCONS_REQUIRE(samples >= 1, "need at least one sample");
  VMCONS_REQUIRE(quantile > 0.0 && quantile <= 1.0,
                 "quantile must be in (0, 1]");

  RobustPlan plan;
  plan.quantile = quantile;

  // One columnar batch holds the unperturbed point estimate (scenario 0)
  // plus every Monte Carlo draw; sampling stays deterministic per index.
  // Memoization is off: perturbed offered loads are almost surely distinct,
  // so caching them would fill every worker's extension arena with
  // single-use prefixes and the end-of-batch merge would flush that churn
  // into the shared snapshot, evicting genuinely reusable states. Keeping
  // the Monte Carlo pass off the kernel leaves its merge epochs to the
  // sweep/validation paths that actually revisit their loads.
  const std::vector<ModelInputs> sampled = parallel_map(
      samples,
      [&](std::size_t index) {
        Rng rng = make_stream(seed, index);
        return perturb_inputs(inputs, uncertainty, rng);
      },
      ThreadPool::shared(), 0, &control);
  ScenarioBatch batch;
  batch.append(inputs);
  for (const ModelInputs& sample : sampled) {
    batch.append(sample);
  }
  BatchOptions options;
  options.memoize = false;
  options.control = control;
  const std::vector<ModelResult> results =
      BatchEvaluator(options).evaluate(batch);
  plan.point_estimate_n = results[0].consolidated_servers;

  double total = 0.0;
  std::size_t above_point = 0;
  for (std::size_t i = 1; i < results.size(); ++i) {
    const std::uint64_t n = results[i].consolidated_servers;
    ++plan.n_histogram[n];
    total += static_cast<double>(n);
    if (n > plan.point_estimate_n) {
      ++above_point;
    }
  }
  plan.mean_n = total / static_cast<double>(samples);
  plan.underprovision_risk =
      static_cast<double>(above_point) / static_cast<double>(samples);

  const auto target =
      static_cast<std::size_t>(std::ceil(quantile * static_cast<double>(samples)));
  std::size_t covered = 0;
  for (const auto& [n, count] : plan.n_histogram) {
    covered += count;
    if (covered >= target) {
      plan.n_at_quantile = n;
      break;
    }
  }
  return plan;
}

}  // namespace vmcons::core
