// The utility analytic model (Section III) — the paper's contribution.
//
// Given the average arrival rate of each service, the per-resource native
// serving rates, the virtualization impact factors, and a target request
// loss probability B, the model computes — before running any service —
//
//   M   servers needed by the dedicated deployment (per service, per
//       resource Erlang-B staffing; max over resources; sum over services),
//   N   servers needed by the consolidated deployment (merged Poisson
//       stream per resource with the Eq. (4) effective service rate;
//       Erlang-B staffing; max over resources),
//   U_M, U_N      average server utilizations (Eq. 8-11),
//   P_M, P_N      power draws under the linear model (Eq. 12-14),
//
// all at the same loss probability. Fig. 4's iterative algorithm is
// implemented by queueing::erlang_b_servers.
//
// Resource-demand convention: a service with mu_ij = 0 places no demand on
// resource j and is excluded from that resource's merged stream (the paper
// treats the DB service's disk demand this way: "close to zero").
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "datacenter/power.hpp"
#include "datacenter/resource.hpp"
#include "datacenter/server_class.hpp"
#include "datacenter/service_spec.hpp"

namespace vmcons::queueing {
class ErlangKernel;
}  // namespace vmcons::queueing

namespace vmcons::core {

struct ModelInputs {
  /// Target loss probability B (loss calculated by requests), in (0, 1).
  double target_loss = 0.01;
  /// The concurrent services to host.
  std::vector<dc::ServiceSpec> services;
  /// Number of co-resident VMs per consolidated server, used to evaluate
  /// the impact curves a_ij(v). Defaults to one VM per service.
  std::optional<unsigned> vms_per_server;
  /// Power model parameters for the two platforms.
  dc::PowerModel dedicated_power = dc::PowerModel::paper_default(dc::Platform::kNativeLinux);
  dc::PowerModel consolidated_power = dc::PowerModel::paper_default(dc::Platform::kXen);
  /// Heterogeneous server classes to staff from. Empty (the default) keeps
  /// the classic homogeneous reference-server model; non-empty adds a
  /// fleet-aware allocation pass mapping M and N onto per-class counts (see
  /// ModelResult::fleet) and derives power from per-class wattages.
  dc::Fleet fleet;
};

/// Per-service staffing of the dedicated deployment.
struct ServicePlan {
  std::string name;
  dc::ResourceVector offered_load;            ///< rho_ij = lambda_i / mu_ij
  std::array<std::uint64_t, dc::kResourceCount> servers_per_resource{};
  std::uint64_t servers = 0;                  ///< max over resources
  double blocking = 0.0;                      ///< E_n at the bottleneck
};

/// Per-resource staffing of the consolidated deployment.
struct ConsolidatedResourcePlan {
  dc::Resource resource = dc::Resource::kCpu;
  double merged_arrival_rate = 0.0;   ///< sum of lambda_i over demanders
  double effective_service_rate = 0.0;///< Eq. (4)
  double offered_load = 0.0;          ///< Eq. (5)
  std::uint64_t servers = 0;
  bool demanded = false;              ///< any service demands this resource
};

/// One server class's share of a fleet staffing allocation.
struct ClassAllocation {
  std::string name;
  /// Reference-equivalents per server (ServerClass::speed()).
  double speed = 0.0;
  /// Owned count (ServerClass::kUnbounded when unconstrained).
  std::uint64_t available = 0;
  std::uint64_t dedicated_servers = 0;     ///< M_c: physical servers for M
  std::uint64_t consolidated_servers = 0;  ///< N_c: physical servers for N
  double dedicated_power_watts = 0.0;      ///< M_c x native-Linux watts
  double consolidated_power_watts = 0.0;   ///< N_c x Xen watts
};

/// How a fleet covers the reference-unit staffing answers M and N: classes
/// are filled fastest first (per-watt cheapest among equal speeds; see
/// batch_kernels::staff_fleet for the deterministic tie-break), so the
/// physical server count is minimal and never grows when a class is added.
struct FleetPlan {
  /// True iff the inputs carried a fleet; everything below is meaningful
  /// only when set (the homogeneous model leaves the plan empty).
  bool planned = false;
  std::vector<ClassAllocation> classes;  ///< fleet declaration order
  bool dedicated_feasible = true;        ///< counts covered all of M
  bool consolidated_feasible = true;     ///< counts covered all of N
  double dedicated_shortfall = 0.0;      ///< uncovered reference-equivalents
  double consolidated_shortfall = 0.0;

  std::uint64_t dedicated_total() const;     ///< sum of M_c
  std::uint64_t consolidated_total() const;  ///< sum of N_c
};

struct ModelResult {
  // --- The number of servers (Section III-B3 part 1) --------------------
  std::vector<ServicePlan> dedicated;
  std::uint64_t dedicated_servers = 0;  ///< M
  std::array<ConsolidatedResourcePlan, dc::kResourceCount> consolidated;
  std::uint64_t consolidated_servers = 0;  ///< N
  double consolidated_blocking = 0.0;      ///< max_j E_N(rho'_j)

  // --- The utilization of servers (part 2) ------------------------------
  double dedicated_utilization = 0.0;     ///< U_M
  double consolidated_utilization = 0.0;  ///< U_N
  /// U_N / U_M: how much better consolidated servers are utilized
  /// (the paper reports 1.5x predicted, 1.7x measured for group 2).
  double utilization_improvement = 0.0;

  // --- The power consumption of servers (part 3) ------------------------
  double dedicated_power_watts = 0.0;     ///< P_M
  double consolidated_power_watts = 0.0;  ///< P_N
  double power_ratio = 0.0;               ///< P_N / P_M
  double power_saving = 0.0;              ///< 1 - P_N / P_M

  double infrastructure_saving = 0.0;     ///< 1 - N / M

  // --- Heterogeneous fleet allocation (empty unless inputs had a fleet) --
  FleetPlan fleet;
};

class UtilityAnalyticModel {
 public:
  explicit UtilityAnalyticModel(ModelInputs inputs);

  /// Routes every Erlang-B evaluation through `kernel` (so sweeps over many
  /// points share one incremental recursion cache); nullptr restores the
  /// stateless free functions. Results are bit-identical either way.
  UtilityAnalyticModel& use_kernel(queueing::ErlangKernel* kernel) {
    kernel_ = kernel;
    return *this;
  }

  /// Runs the Fig. 4 algorithm plus the utilization and power derivations.
  /// Implemented as the batch_kernels span kernels over a ScenarioBatch of
  /// one, so results are bit-identical to BatchEvaluator on any batch
  /// containing these inputs.
  ModelResult solve() const;

  /// Overall request-loss probability of the dedicated deployment when
  /// service i gets servers_per_service[i] servers: the lambda-weighted
  /// mean of per-service bottleneck blocking (loss by requests).
  double dedicated_loss(const std::vector<std::uint64_t>& servers_per_service) const;

  /// Overall request-loss probability of the consolidated deployment with
  /// `servers` shared servers: the worst per-resource Erlang-B blocking.
  double consolidated_loss(std::uint64_t servers) const;

  /// Offered load rho_ij of one service on one resource (Eq. 3).
  double dedicated_offered_load(std::size_t service, dc::Resource resource) const;

  /// Merged offered load rho'_j of one resource (Eq. 5), 0 if undemanded.
  double consolidated_offered_load(dc::Resource resource) const;

  const ModelInputs& inputs() const { return inputs_; }

  /// Number of co-resident VMs used to evaluate impact curves.
  unsigned vm_count() const;

 private:
  double clamped_impact(std::size_t service, dc::Resource resource) const;
  /// Erlang-B via kernel_ when set, else the free functions.
  double eval_erlang_b(std::uint64_t servers, double rho) const;
  std::uint64_t eval_erlang_b_servers(double rho, double target) const;

  ModelInputs inputs_;
  queueing::ErlangKernel* kernel_ = nullptr;
};

/// Picks the "intensive workload" for a service, mirroring the paper's
/// workload-selection rule (Fig. 9): the arrival rate lambda such that the
/// service needs exactly `dedicated_servers` dedicated servers at loss B,
/// positioned `fraction` of the way through the feasible interval
/// (fraction 0 = barely needs that many, 1 = barely fits).
double intensive_workload(const dc::ServiceSpec& service,
                          std::uint64_t dedicated_servers, double target_loss,
                          double fraction = 0.5);

}  // namespace vmcons::core
