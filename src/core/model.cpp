#include "core/model.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "core/batch_eval.hpp"
#include "core/scenario_batch.hpp"
#include "queueing/erlang.hpp"
#include "queueing/erlang_kernel.hpp"
#include "util/error.hpp"

namespace vmcons::core {

std::uint64_t FleetPlan::dedicated_total() const {
  std::uint64_t total = 0;
  for (const ClassAllocation& allocation : classes) {
    total += allocation.dedicated_servers;
  }
  return total;
}

std::uint64_t FleetPlan::consolidated_total() const {
  std::uint64_t total = 0;
  for (const ClassAllocation& allocation : classes) {
    total += allocation.consolidated_servers;
  }
  return total;
}

UtilityAnalyticModel::UtilityAnalyticModel(ModelInputs inputs)
    : inputs_(std::move(inputs)) {
  VMCONS_REQUIRE(inputs_.target_loss > 0.0 && inputs_.target_loss < 1.0,
                 "target loss must be in (0, 1)");
  VMCONS_REQUIRE(!inputs_.services.empty(), "model needs at least one service");
  for (const auto& service : inputs_.services) {
    VMCONS_REQUIRE(service.arrival_rate > 0.0,
                   "service '" + service.name + "' needs arrival rate > 0");
    VMCONS_REQUIRE(service.native_rates.any_positive(),
                   "service '" + service.name + "' demands no resource");
  }
}

double UtilityAnalyticModel::eval_erlang_b(std::uint64_t servers,
                                           double rho) const {
  return kernel_ ? kernel_->erlang_b(servers, rho)
                 : queueing::erlang_b(servers, rho);
}

std::uint64_t UtilityAnalyticModel::eval_erlang_b_servers(
    double rho, double target) const {
  return kernel_ ? kernel_->erlang_b_servers(rho, target)
                 : queueing::erlang_b_servers(rho, target);
}

unsigned UtilityAnalyticModel::vm_count() const {
  if (inputs_.vms_per_server.has_value()) {
    return *inputs_.vms_per_server;
  }
  return static_cast<unsigned>(inputs_.services.size());
}

double UtilityAnalyticModel::clamped_impact(std::size_t service,
                                            dc::Resource resource) const {
  return inputs_.services[service].impact_factor(resource, vm_count());
}

double UtilityAnalyticModel::dedicated_offered_load(std::size_t service,
                                                    dc::Resource resource) const {
  VMCONS_REQUIRE(service < inputs_.services.size(), "service index out of range");
  const double mu = inputs_.services[service].native_rates[resource];
  if (mu <= 0.0) {
    return 0.0;
  }
  return queueing::offered_load(inputs_.services[service].arrival_rate, mu);
}

double UtilityAnalyticModel::consolidated_offered_load(dc::Resource resource) const {
  // Eq. (4)/(5), restricted to the services that demand this resource:
  // requests with no demand never visit the resource's queue.
  double merged_lambda = 0.0;
  double weighted_capacity = 0.0;  // sum_i lambda_i * mu_ij * a_ij
  for (std::size_t i = 0; i < inputs_.services.size(); ++i) {
    const auto& service = inputs_.services[i];
    const double mu = service.native_rates[resource];
    if (mu <= 0.0) {
      continue;
    }
    merged_lambda += service.arrival_rate;
    weighted_capacity += service.arrival_rate * mu * clamped_impact(i, resource);
  }
  if (merged_lambda <= 0.0) {
    return 0.0;
  }
  // rho' = lambda / mu' with mu' = weighted_capacity / lambda (Eq. 4).
  return merged_lambda * merged_lambda / weighted_capacity;
}

ModelResult UtilityAnalyticModel::solve() const {
  // The scalar path is a batch of one: the same four span kernels the
  // BatchEvaluator runs over whole grids, so the two are bit-identical by
  // construction (there is exactly one implementation of the math).
  ScenarioBatch batch;
  batch.append(inputs_);
  ModelResult result;
  const std::span<ModelResult> out(&result, 1);
  batch_kernels::staff_dedicated(batch, 0, 1, kernel_, out);
  batch_kernels::staff_consolidated(batch, 0, 1, kernel_, out);
  batch_kernels::staff_fleet(batch, 0, 1, out);
  batch_kernels::derive_utility(batch, 0, 1, out);
  batch_kernels::derive_power(batch, 0, 1, out);
  return result;
}

double UtilityAnalyticModel::dedicated_loss(
    const std::vector<std::uint64_t>& servers_per_service) const {
  VMCONS_REQUIRE(servers_per_service.size() == inputs_.services.size(),
                 "one server count per service required");
  // Loss by requests: lambda-weighted blocking, each service at its own
  // bottleneck resource.
  double lost = 0.0;
  double offered = 0.0;
  for (std::size_t i = 0; i < inputs_.services.size(); ++i) {
    double blocking = 0.0;
    for (const dc::Resource resource : dc::all_resources()) {
      const double rho = dedicated_offered_load(i, resource);
      if (rho > 0.0) {
        blocking = std::max(
            blocking, eval_erlang_b(servers_per_service[i], rho));
      }
    }
    lost += inputs_.services[i].arrival_rate * blocking;
    offered += inputs_.services[i].arrival_rate;
  }
  return offered > 0.0 ? lost / offered : 0.0;
}

double UtilityAnalyticModel::consolidated_loss(std::uint64_t servers) const {
  double worst = 0.0;
  for (const dc::Resource resource : dc::all_resources()) {
    const double rho = consolidated_offered_load(resource);
    if (rho > 0.0) {
      worst = std::max(worst, eval_erlang_b(servers, rho));
    }
  }
  return worst;
}

double intensive_workload(const dc::ServiceSpec& service,
                          std::uint64_t dedicated_servers, double target_loss,
                          double fraction) {
  VMCONS_REQUIRE(dedicated_servers >= 1, "need at least one dedicated server");
  VMCONS_REQUIRE(fraction >= 0.0 && fraction <= 1.0,
                 "fraction must be in [0, 1]");
  const double mu = service.native_bottleneck_rate();
  // The service needs exactly n servers when rho lies in
  // (capacity(n-1), capacity(n)] — capacity(0) = 0.
  const double hi = queueing::erlang_b_capacity(dedicated_servers, target_loss);
  const double lo =
      dedicated_servers == 1
          ? 0.0
          : queueing::erlang_b_capacity(dedicated_servers - 1, target_loss);
  const double rho = lo + fraction * (hi - lo);
  return rho * mu;
}

}  // namespace vmcons::core
