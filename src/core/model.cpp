#include "core/model.hpp"

#include <algorithm>
#include <cmath>

#include "queueing/erlang.hpp"
#include "queueing/erlang_kernel.hpp"
#include "util/error.hpp"

namespace vmcons::core {
namespace {

/// Offered *work* per service (erlangs at the bottleneck resource): the
/// quantity the utilization equations (8)-(11) aggregate. `rate` is the
/// per-server service rate in the relevant deployment.
double offered_work(double arrival_rate, double rate) {
  return arrival_rate / rate;
}

}  // namespace

UtilityAnalyticModel::UtilityAnalyticModel(ModelInputs inputs)
    : inputs_(std::move(inputs)) {
  VMCONS_REQUIRE(inputs_.target_loss > 0.0 && inputs_.target_loss < 1.0,
                 "target loss must be in (0, 1)");
  VMCONS_REQUIRE(!inputs_.services.empty(), "model needs at least one service");
  for (const auto& service : inputs_.services) {
    VMCONS_REQUIRE(service.arrival_rate > 0.0,
                   "service '" + service.name + "' needs arrival rate > 0");
    VMCONS_REQUIRE(service.native_rates.any_positive(),
                   "service '" + service.name + "' demands no resource");
  }
}

double UtilityAnalyticModel::eval_erlang_b(std::uint64_t servers,
                                           double rho) const {
  return kernel_ ? kernel_->erlang_b(servers, rho)
                 : queueing::erlang_b(servers, rho);
}

std::uint64_t UtilityAnalyticModel::eval_erlang_b_servers(
    double rho, double target) const {
  return kernel_ ? kernel_->erlang_b_servers(rho, target)
                 : queueing::erlang_b_servers(rho, target);
}

unsigned UtilityAnalyticModel::vm_count() const {
  if (inputs_.vms_per_server.has_value()) {
    return *inputs_.vms_per_server;
  }
  return static_cast<unsigned>(inputs_.services.size());
}

double UtilityAnalyticModel::clamped_impact(std::size_t service,
                                            dc::Resource resource) const {
  return inputs_.services[service].impact_factor(resource, vm_count());
}

double UtilityAnalyticModel::dedicated_offered_load(std::size_t service,
                                                    dc::Resource resource) const {
  VMCONS_REQUIRE(service < inputs_.services.size(), "service index out of range");
  const double mu = inputs_.services[service].native_rates[resource];
  if (mu <= 0.0) {
    return 0.0;
  }
  return queueing::offered_load(inputs_.services[service].arrival_rate, mu);
}

double UtilityAnalyticModel::consolidated_offered_load(dc::Resource resource) const {
  // Eq. (4)/(5), restricted to the services that demand this resource:
  // requests with no demand never visit the resource's queue.
  double merged_lambda = 0.0;
  double weighted_capacity = 0.0;  // sum_i lambda_i * mu_ij * a_ij
  for (std::size_t i = 0; i < inputs_.services.size(); ++i) {
    const auto& service = inputs_.services[i];
    const double mu = service.native_rates[resource];
    if (mu <= 0.0) {
      continue;
    }
    merged_lambda += service.arrival_rate;
    weighted_capacity += service.arrival_rate * mu * clamped_impact(i, resource);
  }
  if (merged_lambda <= 0.0) {
    return 0.0;
  }
  // rho' = lambda / mu' with mu' = weighted_capacity / lambda (Eq. 4).
  return merged_lambda * merged_lambda / weighted_capacity;
}

ModelResult UtilityAnalyticModel::solve() const {
  ModelResult result;
  const double b = inputs_.target_loss;

  // ---- Dedicated staffing: per service, per resource; max; sum ----------
  for (std::size_t i = 0; i < inputs_.services.size(); ++i) {
    const auto& service = inputs_.services[i];
    ServicePlan plan;
    plan.name = service.name;
    for (const dc::Resource resource : dc::all_resources()) {
      const double rho = dedicated_offered_load(i, resource);
      plan.offered_load[resource] = rho;
      const std::uint64_t n =
          rho > 0.0 ? eval_erlang_b_servers(rho, b) : 0;
      plan.servers_per_resource[static_cast<std::size_t>(resource)] = n;
      plan.servers = std::max(plan.servers, n);
    }
    // Blocking at the granted staffing: worst resource.
    double blocking = 0.0;
    for (const dc::Resource resource : dc::all_resources()) {
      const double rho = plan.offered_load[resource];
      if (rho > 0.0) {
        blocking = std::max(blocking, eval_erlang_b(plan.servers, rho));
      }
    }
    plan.blocking = blocking;
    result.dedicated_servers += plan.servers;
    result.dedicated.push_back(std::move(plan));
  }

  // ---- Consolidated staffing: per resource on the merged stream ---------
  for (const dc::Resource resource : dc::all_resources()) {
    auto& plan = result.consolidated[static_cast<std::size_t>(resource)];
    plan.resource = resource;
    double merged_lambda = 0.0;
    for (std::size_t i = 0; i < inputs_.services.size(); ++i) {
      if (inputs_.services[i].native_rates[resource] > 0.0) {
        merged_lambda += inputs_.services[i].arrival_rate;
      }
    }
    plan.merged_arrival_rate = merged_lambda;
    plan.offered_load = consolidated_offered_load(resource);
    plan.demanded = plan.offered_load > 0.0;
    if (plan.demanded) {
      plan.effective_service_rate = merged_lambda / plan.offered_load;
      plan.servers = eval_erlang_b_servers(plan.offered_load, b);
      result.consolidated_servers =
          std::max(result.consolidated_servers, plan.servers);
    }
  }
  result.consolidated_blocking = consolidated_loss(result.consolidated_servers);

  // ---- Utilization (Eq. 8-11): offered bottleneck work per server -------
  double dedicated_work = 0.0;
  double consolidated_work = 0.0;
  const unsigned v = vm_count();
  for (const auto& service : inputs_.services) {
    dedicated_work +=
        offered_work(service.arrival_rate, service.native_bottleneck_rate());
    consolidated_work +=
        offered_work(service.arrival_rate, service.effective_rate(v));
  }
  if (result.dedicated_servers > 0) {
    result.dedicated_utilization =
        dedicated_work / static_cast<double>(result.dedicated_servers);
  }
  if (result.consolidated_servers > 0) {
    result.consolidated_utilization =
        consolidated_work / static_cast<double>(result.consolidated_servers);
  }
  if (result.dedicated_utilization > 0.0) {
    result.utilization_improvement =
        result.consolidated_utilization / result.dedicated_utilization;
  }

  // ---- Power (Eq. 12-14) -------------------------------------------------
  result.dedicated_power_watts =
      static_cast<double>(result.dedicated_servers) *
      inputs_.dedicated_power.watts(
          std::min(1.0, result.dedicated_utilization));
  result.consolidated_power_watts =
      static_cast<double>(result.consolidated_servers) *
      inputs_.consolidated_power.watts(
          std::min(1.0, result.consolidated_utilization));
  if (result.dedicated_power_watts > 0.0) {
    result.power_ratio =
        result.consolidated_power_watts / result.dedicated_power_watts;
    result.power_saving = 1.0 - result.power_ratio;
  }
  if (result.dedicated_servers > 0) {
    result.infrastructure_saving =
        1.0 - static_cast<double>(result.consolidated_servers) /
                  static_cast<double>(result.dedicated_servers);
  }
  return result;
}

double UtilityAnalyticModel::dedicated_loss(
    const std::vector<std::uint64_t>& servers_per_service) const {
  VMCONS_REQUIRE(servers_per_service.size() == inputs_.services.size(),
                 "one server count per service required");
  // Loss by requests: lambda-weighted blocking, each service at its own
  // bottleneck resource.
  double lost = 0.0;
  double offered = 0.0;
  for (std::size_t i = 0; i < inputs_.services.size(); ++i) {
    double blocking = 0.0;
    for (const dc::Resource resource : dc::all_resources()) {
      const double rho = dedicated_offered_load(i, resource);
      if (rho > 0.0) {
        blocking = std::max(
            blocking, eval_erlang_b(servers_per_service[i], rho));
      }
    }
    lost += inputs_.services[i].arrival_rate * blocking;
    offered += inputs_.services[i].arrival_rate;
  }
  return offered > 0.0 ? lost / offered : 0.0;
}

double UtilityAnalyticModel::consolidated_loss(std::uint64_t servers) const {
  double worst = 0.0;
  for (const dc::Resource resource : dc::all_resources()) {
    const double rho = consolidated_offered_load(resource);
    if (rho > 0.0) {
      worst = std::max(worst, eval_erlang_b(servers, rho));
    }
  }
  return worst;
}

double intensive_workload(const dc::ServiceSpec& service,
                          std::uint64_t dedicated_servers, double target_loss,
                          double fraction) {
  VMCONS_REQUIRE(dedicated_servers >= 1, "need at least one dedicated server");
  VMCONS_REQUIRE(fraction >= 0.0 && fraction <= 1.0,
                 "fraction must be in [0, 1]");
  const double mu = service.native_bottleneck_rate();
  // The service needs exactly n servers when rho lies in
  // (capacity(n-1), capacity(n)] — capacity(0) = 0.
  const double hi = queueing::erlang_b_capacity(dedicated_servers, target_loss);
  const double lo =
      dedicated_servers == 1
          ? 0.0
          : queueing::erlang_b_capacity(dedicated_servers - 1, target_loss);
  const double rho = lo + fraction * (hi - lo);
  return rho * mu;
}

}  // namespace vmcons::core
