#include "queueing/erlang_kernel.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace vmcons::queueing {
namespace {

// Memory bounds for the prefix cache: one state never stores more than
// kMaxStatePrefix doubles (16 MB), and the kernel as a whole stays under
// kPrefixBudget doubles (32 MB) by evicting least-recently-used states.
// Queries beyond the per-state cap still answer correctly; the tail of the
// recursion just runs uncached.
constexpr std::size_t kMaxStatePrefix = std::size_t{1} << 21;
constexpr std::size_t kPrefixBudget = std::size_t{1} << 22;

/// The erlang.hpp convergence guard, kept bit-for-bit identical so the
/// kernel throws exactly where the free function does.
std::uint64_t servers_limit(double rho) {
  return static_cast<std::uint64_t>(rho + 50.0 * std::sqrt(rho) + 64.0);
}

/// log E_n(rho) via the inverse recurrence I_n = 1 + (n/rho) I_{n-1}
/// run on log I_n, which stays finite for any (n, rho).
double log_erlang_b_plain(std::uint64_t servers, double rho,
                          std::uint64_t& steps) {
  double log_inverse = 0.0;  // log I_0 = log 1
  for (std::uint64_t k = 1; k <= servers; ++k) {
    const double x = std::log(static_cast<double>(k) / rho) + log_inverse;
    log_inverse =
        x > 0.0 ? x + std::log1p(std::exp(-x)) : std::log1p(std::exp(x));
    ++steps;
  }
  return -log_inverse;
}

}  // namespace

ErlangKernel::ErlangKernel(std::size_t max_states)
    : max_states_(std::max<std::size_t>(1, max_states)),
      evaluations_metric_(metrics::registry().counter("erlang.evaluations")),
      cache_hits_metric_(metrics::registry().counter("erlang.cache_hits")),
      steps_metric_(metrics::registry().counter("erlang.steps")) {}

ErlangKernel::State& ErlangKernel::state_for(double rho) {
  const std::uint64_t key = std::bit_cast<std::uint64_t>(rho);
  auto it = states_.find(key);
  if (it == states_.end()) {
    // Evict the least-recently-used state when over either bound. The map
    // is small (max_states_ entries), so a linear scan is fine.
    while (states_.size() >= max_states_ ||
           (cached_doubles_ > kPrefixBudget && !states_.empty())) {
      auto victim = states_.begin();
      for (auto candidate = states_.begin(); candidate != states_.end();
           ++candidate) {
        if (candidate->second.last_used < victim->second.last_used) {
          victim = candidate;
        }
      }
      cached_doubles_ -= victim->second.prefix.size();
      states_.erase(victim);
    }
    it = states_.emplace(key, State{{1.0}, 0}).first;
    cached_doubles_ += 1;
  }
  it->second.last_used = ++ticket_;
  return it->second;
}

void ErlangKernel::extend(State& state, double rho, std::uint64_t servers) {
  const std::uint64_t cap = std::min<std::uint64_t>(servers, kMaxStatePrefix - 1);
  if (state.prefix.size() > cap) {
    return;
  }
  const std::size_t before = state.prefix.size();
  double blocking = state.prefix.back();
  for (std::uint64_t n = state.prefix.size(); n <= cap; ++n) {
    blocking = rho * blocking / (static_cast<double>(n) + rho * blocking);
    state.prefix.push_back(blocking);
  }
  const std::uint64_t grown = state.prefix.size() - before;
  stats_.steps += grown;
  steps_metric_.add(grown);
  cached_doubles_ += grown;
}

double ErlangKernel::erlang_b_locked(std::uint64_t servers, double rho) {
  ++stats_.evaluations;
  evaluations_metric_.add();
  State& state = state_for(rho);
  if (state.prefix.size() > servers) {
    ++stats_.cache_hits;
    cache_hits_metric_.add();
    return state.prefix[servers];
  }
  extend(state, rho, servers);
  if (state.prefix.size() > servers) {
    return state.prefix[servers];
  }
  // Beyond the per-state cache cap: finish the recursion uncached.
  double blocking = state.prefix.back();
  std::uint64_t steps = 0;
  for (std::uint64_t n = state.prefix.size(); n <= servers; ++n) {
    blocking = rho * blocking / (static_cast<double>(n) + rho * blocking);
    ++steps;
  }
  stats_.steps += steps;
  steps_metric_.add(steps);
  return blocking;
}

double ErlangKernel::erlang_b(std::uint64_t servers, double rho) {
  VMCONS_REQUIRE(rho >= 0.0, "offered load must be >= 0");
  if (rho == 0.0) {
    return servers == 0 ? 1.0 : 0.0;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  return erlang_b_locked(servers, rho);
}

double ErlangKernel::log_erlang_b(std::uint64_t servers, double rho) {
  VMCONS_REQUIRE(rho >= 0.0, "offered load must be >= 0");
  if (rho == 0.0) {
    return servers == 0 ? 0.0 : -std::numeric_limits<double>::infinity();
  }
  std::uint64_t steps = 0;
  const double result = log_erlang_b_plain(servers, rho, steps);
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.evaluations;
  evaluations_metric_.add();
  stats_.steps += steps;
  steps_metric_.add(steps);
  return result;
}

std::uint64_t ErlangKernel::erlang_b_servers_locked(double rho,
                                                    double target_blocking) {
  ++stats_.evaluations;
  evaluations_metric_.add();
  State& state = state_for(rho);
  // E_n is strictly decreasing in n for rho > 0, so the cached prefix is
  // sorted descending: binary-search for the first entry <= target.
  const auto it = std::lower_bound(
      state.prefix.begin(), state.prefix.end(), target_blocking,
      [](double blocking, double target) { return blocking > target; });
  if (it != state.prefix.end()) {
    ++stats_.cache_hits;
    cache_hits_metric_.add();
    return static_cast<std::uint64_t>(it - state.prefix.begin());
  }
  // Resume the recursion where the prefix ends instead of from E_0.
  const std::uint64_t limit = servers_limit(rho);
  double blocking = state.prefix.back();
  std::uint64_t n = state.prefix.size() - 1;
  std::uint64_t uncached_steps = 0;
  while (blocking > target_blocking) {
    ++n;
    blocking = rho * blocking / (static_cast<double>(n) + rho * blocking);
    if (n < kMaxStatePrefix) {
      state.prefix.push_back(blocking);
      ++cached_doubles_;
      ++stats_.steps;
      steps_metric_.add(1);
    } else {
      ++uncached_steps;
    }
    if (n > limit) {
      stats_.steps += uncached_steps;
      steps_metric_.add(uncached_steps);
      throw NumericError("erlang_b_servers failed to converge");
    }
  }
  stats_.steps += uncached_steps;
  steps_metric_.add(uncached_steps);
  return n;
}

std::uint64_t ErlangKernel::erlang_b_servers(double rho,
                                             double target_blocking) {
  VMCONS_REQUIRE(rho >= 0.0, "offered load must be >= 0");
  VMCONS_REQUIRE(target_blocking > 0.0 && target_blocking <= 1.0,
                 "target blocking must be in (0, 1]");
  if (rho == 0.0) {
    return 0;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  return erlang_b_servers_locked(rho, target_blocking);
}

void ErlangKernel::eval_many(std::span<const BlockingQuery> queries,
                             std::span<double> out) {
  VMCONS_REQUIRE(queries.size() == out.size(),
                 "eval_many needs one output slot per query");
  for (const BlockingQuery& query : queries) {
    VMCONS_REQUIRE(query.rho >= 0.0, "offered load must be >= 0");
  }
  // Sort by (rho, servers): queries against the same recursion state become
  // adjacent, and within a state the prefix only ever grows forward.
  std::vector<std::uint32_t> order(queries.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (queries[a].rho != queries[b].rho) {
                return queries[a].rho < queries[b].rho;
              }
              return queries[a].servers < queries[b].servers;
            });
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::uint32_t i : order) {
    const BlockingQuery& query = queries[i];
    out[i] = query.rho == 0.0 ? (query.servers == 0 ? 1.0 : 0.0)
                              : erlang_b_locked(query.servers, query.rho);
  }
}

void ErlangKernel::servers_for_many(std::span<const StaffingQuery> queries,
                                    std::span<std::uint64_t> out) {
  VMCONS_REQUIRE(queries.size() == out.size(),
                 "servers_for_many needs one output slot per query");
  for (const StaffingQuery& query : queries) {
    VMCONS_REQUIRE(query.rho >= 0.0, "offered load must be >= 0");
    VMCONS_REQUIRE(
        query.target_blocking > 0.0 && query.target_blocking <= 1.0,
        "target blocking must be in (0, 1]");
  }
  // Sort by (rho, descending target): looser targets need shorter prefixes,
  // so each state's recursion is resumed, never restarted.
  std::vector<std::uint32_t> order(queries.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (queries[a].rho != queries[b].rho) {
                return queries[a].rho < queries[b].rho;
              }
              return queries[a].target_blocking > queries[b].target_blocking;
            });
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::uint32_t i : order) {
    const StaffingQuery& query = queries[i];
    out[i] = query.rho == 0.0
                 ? 0
                 : erlang_b_servers_locked(query.rho, query.target_blocking);
  }
}

double ErlangKernel::erlang_b_capacity(std::uint64_t servers,
                                       double target_blocking) {
  VMCONS_REQUIRE(servers >= 1, "capacity inverse needs at least one server");
  VMCONS_REQUIRE(target_blocking > 0.0 && target_blocking < 1.0,
                 "target blocking must be in (0, 1)");
  const double log_target = std::log(target_blocking);
  const double n = static_cast<double>(servers);
  std::uint64_t steps = 0;
  std::uint64_t evaluations = 0;

  // Bracket exactly like the bisection version, but in the log domain.
  double lo = 0.0;
  double hi = n;
  ++evaluations;
  while (log_erlang_b_plain(servers, hi, steps) < log_target) {
    hi *= 2.0;
    ++evaluations;
    if (hi > 1e12) {
      throw NumericError("erlang_b_capacity failed to bracket");
    }
  }

  // Safeguarded Newton on f(rho) = log E_n(rho) - log B, using the closed
  // form dE/drho = E * (n/rho - 1 + E) => f'(rho) = n/rho - 1 + E. Any step
  // leaving the bracket falls back to bisection, so worst case matches the
  // plain bisection; typical case converges in < 10 evaluations.
  double rho = hi;
  for (int iteration = 0; iteration < 200; ++iteration) {
    const double log_e = log_erlang_b_plain(servers, rho, steps);
    ++evaluations;
    const double f = log_e - log_target;
    if (std::abs(f) < 1e-14) {
      break;
    }
    if (f < 0.0) {
      lo = rho;
    } else {
      hi = rho;
    }
    if (hi - lo < 1e-13 * (1.0 + hi)) {
      rho = 0.5 * (lo + hi);
      break;
    }
    const double derivative = n / rho - 1.0 + std::exp(log_e);
    double next = rho - f / derivative;
    if (!std::isfinite(next) || next <= lo || next >= hi) {
      next = 0.5 * (lo + hi);
    }
    rho = next;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  stats_.evaluations += evaluations;
  evaluations_metric_.add(evaluations);
  stats_.steps += steps;
  steps_metric_.add(steps);
  return rho;
}

ErlangKernel::Stats ErlangKernel::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void ErlangKernel::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  states_.clear();
  cached_doubles_ = 0;
  ticket_ = 0;
  stats_ = Stats{};
}

ErlangKernel& ErlangKernel::shared() {
  static ErlangKernel kernel;
  return kernel;
}

}  // namespace vmcons::queueing
