#include "queueing/erlang_kernel.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace vmcons::queueing {
namespace {

// Memory bounds: one cached prefix never stores more than kMaxStatePrefix
// doubles (16 MB), and a published snapshot stays under kPrefixBudget
// doubles (32 MB) by evicting least-recently-merged states at publish time.
// Queries beyond the per-state cap still answer correctly; the tail of the
// recursion just runs uncached.
constexpr std::size_t kMaxStatePrefix = std::size_t{1} << 21;
constexpr std::size_t kPrefixBudget = std::size_t{1} << 22;

// A thread whose private arena exceeds this many extension doubles (512 KB)
// folds it into a fresh snapshot, so arenas stay small and other threads
// start hitting the published prefixes instead of re-deriving them.
constexpr std::size_t kArenaWatermark = std::size_t{1} << 16;

/// Monotonically increasing kernel-generation ids. Never reused, so a
/// thread-local arena pointer keyed by a retired serial can never collide
/// with a live kernel.
std::atomic<std::uint64_t> g_kernel_serial{1};

/// The erlang.hpp convergence guard, kept bit-for-bit identical so the
/// kernel throws exactly where the free function does.
std::uint64_t servers_limit(double rho) {
  return static_cast<std::uint64_t>(rho + 50.0 * std::sqrt(rho) + 64.0);
}

/// log E_n(rho) via the inverse recurrence I_n = 1 + (n/rho) I_{n-1}
/// run on log I_n, which stays finite for any (n, rho).
double log_erlang_b_plain(std::uint64_t servers, double rho,
                          std::uint64_t& steps) {
  double log_inverse = 0.0;  // log I_0 = log 1
  for (std::uint64_t k = 1; k <= servers; ++k) {
    const double x = std::log(static_cast<double>(k) / rho) + log_inverse;
    log_inverse =
        x > 0.0 ? x + std::log1p(std::exp(-x)) : std::log1p(std::exp(x));
    ++steps;
  }
  return -log_inverse;
}

/// First index whose (strictly decreasing) value is <= target, or size().
template <typename Vec>
std::size_t descending_lower_bound(const Vec& values, double target) {
  const auto it = std::lower_bound(
      values.begin(), values.end(), target,
      [](double blocking, double t) { return blocking > t; });
  return static_cast<std::size_t>(it - values.begin());
}

}  // namespace

/// One thread's private extension tier. The owning thread mutates it only
/// under `m`; publish() reads it under `m`; the owner's own reads need no
/// lock (it is the only writer). Entries are dropped by the owner once the
/// snapshot covers them, so arenas stay transient.
struct ErlangKernel::Arena {
  /// Continuation of one rho's recurrence: values before `base->size()`
  /// live in the immutable snapshot prefix `base` (null when the rho was
  /// never published), values at index base_len + i live in ext[i].
  struct Extension {
    PrefixPtr base;
    std::vector<double> ext;
    std::size_t base_len() const noexcept { return base ? base->size() : 0; }
    std::size_t combined() const noexcept { return base_len() + ext.size(); }
    double value_at(std::uint64_t n) const {
      return n < base_len() ? (*base)[n] : ext[n - base_len()];
    }
    double last() const { return ext.empty() ? base->back() : ext.back(); }
  };

  std::mutex m;
  std::unordered_map<std::uint64_t, Extension> states;  // key: rho bits
  std::size_t doubles = 0;  ///< sum of ext sizes — the merge watermark gauge
  std::uint64_t serial = 0;  ///< kernel generation this arena belongs to

  /// The slot for rho, created from (or rebased onto) the snapshot's
  /// prefix. Requires `m` held by the owning thread.
  Extension& state_for(const Snapshot& snapshot, std::uint64_t key) {
    PrefixPtr published;
    if (const auto it = snapshot.states.find(key);
        it != snapshot.states.end()) {
      published = it->second.prefix;
    }
    auto [it, inserted] = states.try_emplace(key);
    Extension& state = it->second;
    if (inserted) {
      if (published) {
        state.base = std::move(published);
      } else {
        state.ext.push_back(1.0);  // E_0 — seeded, not a recurrence step
        ++doubles;
      }
    } else if (published && published->size() > state.combined()) {
      // A merge published a longer prefix (bit-identical to anything this
      // arena derived): adopt it and drop the now-redundant extension.
      doubles -= state.ext.size();
      state.ext.clear();
      state.base = std::move(published);
    }
    return state;
  }
};

ErlangKernel::ErlangKernel(std::size_t max_states)
    : snapshot_(std::make_shared<const Snapshot>()),
      serial_(g_kernel_serial.fetch_add(1, std::memory_order_relaxed)),
      max_states_(std::max<std::size_t>(1, max_states)),
      evaluations_metric_(
          metrics::registry().counter(metrics::names::kErlangEvaluations)),
      cache_hits_metric_(
          metrics::registry().counter(metrics::names::kErlangCacheHits)),
      steps_metric_(metrics::registry().counter(metrics::names::kErlangSteps)),
      snapshot_hits_metric_(
          metrics::registry().counter(metrics::names::kErlangSnapshotHits)),
      arena_extensions_metric_(
          metrics::registry().counter(metrics::names::kErlangArenaExtensions)),
      merges_metric_(
          metrics::registry().counter(metrics::names::kErlangMerges)) {}

ErlangKernel::~ErlangKernel() = default;

ErlangKernel::SnapshotPtr ErlangKernel::load_snapshot() const {
  return snapshot_.load(std::memory_order_acquire);
}

std::unordered_map<std::uint64_t, ErlangKernel::Arena*>&
ErlangKernel::thread_arena_map() {
  // Keyed by kernel serial (never reused), so entries for destroyed or
  // cleared kernels simply go stale; they are never dereferenced again.
  thread_local std::unordered_map<std::uint64_t, Arena*> map;
  return map;
}

ErlangKernel::Arena& ErlangKernel::local_arena() {
  auto& map = thread_arena_map();
  if (const auto it = map.find(serial_.load(std::memory_order_acquire));
      it != map.end()) {
    return *it->second;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  // Re-read under the lock: a concurrent clear() may have bumped the
  // generation between the fast-path lookup and here.
  const std::uint64_t serial = serial_.load(std::memory_order_relaxed);
  if (const auto it = map.find(serial); it != map.end()) {
    return *it->second;
  }
  arenas_.push_back(std::make_unique<Arena>());
  Arena* arena = arenas_.back().get();
  arena->serial = serial;
  map.emplace(serial, arena);
  return *arena;
}

ErlangKernel::Arena* ErlangKernel::registered_local_arena() const {
  auto& map = thread_arena_map();
  const auto it = map.find(serial_.load(std::memory_order_acquire));
  return it != map.end() ? it->second : nullptr;
}

double ErlangKernel::eval_one(const Snapshot& snapshot, std::uint64_t servers,
                              double rho, Tally& tally) {
  ++tally.evaluations;
  const std::uint64_t key = std::bit_cast<std::uint64_t>(rho);
  if (const auto it = snapshot.states.find(key);
      it != snapshot.states.end() && it->second.prefix->size() > servers) {
    ++tally.cache_hits;
    ++tally.snapshot_hits;
    return (*it->second.prefix)[servers];
  }
  Arena& arena = local_arena();
  std::lock_guard<std::mutex> lock(arena.m);
  Arena::Extension& state = arena.state_for(snapshot, key);
  std::size_t covered = state.combined();
  if (servers < covered) {
    ++tally.cache_hits;
    return state.value_at(servers);
  }
  // Resume the recurrence privately where the covered prefix ends.
  double blocking = state.last();
  const std::uint64_t cap =
      std::min<std::uint64_t>(servers, kMaxStatePrefix - 1);
  std::uint64_t grown = 0;
  for (std::uint64_t n = covered; n <= cap; ++n) {
    blocking = rho * blocking / (static_cast<double>(n) + rho * blocking);
    state.ext.push_back(blocking);
    ++grown;
  }
  if (grown > 0) {
    tally.steps += grown;
    arena.doubles += grown;
    ++tally.arena_extensions;
  }
  covered += grown;
  if (servers < covered) {
    return state.value_at(servers);
  }
  // Beyond the per-state cache cap: finish the recursion uncached.
  std::uint64_t uncached = 0;
  for (std::uint64_t n = covered; n <= servers; ++n) {
    blocking = rho * blocking / (static_cast<double>(n) + rho * blocking);
    ++uncached;
  }
  tally.steps += uncached;
  return blocking;
}

std::uint64_t ErlangKernel::staff_one(const Snapshot& snapshot, double rho,
                                      double target_blocking, Tally& tally) {
  ++tally.evaluations;
  const std::uint64_t key = std::bit_cast<std::uint64_t>(rho);
  if (const auto it = snapshot.states.find(key); it != snapshot.states.end()) {
    // E_n is strictly decreasing in n for rho > 0, so the prefix is sorted
    // descending: the answer is in it iff its last entry is <= target.
    const Prefix& prefix = *it->second.prefix;
    if (prefix.back() <= target_blocking) {
      ++tally.cache_hits;
      ++tally.snapshot_hits;
      return descending_lower_bound(prefix, target_blocking);
    }
  }
  Arena& arena = local_arena();
  std::lock_guard<std::mutex> lock(arena.m);
  Arena::Extension& state = arena.state_for(snapshot, key);
  if (state.base && state.base->back() <= target_blocking) {
    ++tally.cache_hits;
    return descending_lower_bound(*state.base, target_blocking);
  }
  if (!state.ext.empty() && state.ext.back() <= target_blocking) {
    ++tally.cache_hits;
    return state.base_len() +
           descending_lower_bound(state.ext, target_blocking);
  }
  // Resume the recursion where the covered prefix ends instead of from E_0.
  const std::uint64_t limit = servers_limit(rho);
  double blocking = state.last();
  std::uint64_t n = state.combined() - 1;
  std::uint64_t grown = 0;
  std::uint64_t uncached = 0;
  const auto settle = [&] {
    tally.steps += grown + uncached;
    arena.doubles += grown;
    if (grown > 0) {
      ++tally.arena_extensions;
    }
  };
  while (blocking > target_blocking) {
    ++n;
    blocking = rho * blocking / (static_cast<double>(n) + rho * blocking);
    if (n < kMaxStatePrefix) {
      state.ext.push_back(blocking);
      ++grown;
    } else {
      ++uncached;
    }
    if (n > limit) {
      settle();
      throw NumericError("erlang_b_servers failed to converge");
    }
  }
  settle();
  return n;
}

void ErlangKernel::flush(const Tally& tally) {
  if (tally.evaluations > 0) {
    evaluations_.fetch_add(tally.evaluations, std::memory_order_relaxed);
    evaluations_metric_.add(tally.evaluations);
  }
  if (tally.cache_hits > 0) {
    cache_hits_.fetch_add(tally.cache_hits, std::memory_order_relaxed);
    cache_hits_metric_.add(tally.cache_hits);
  }
  if (tally.snapshot_hits > 0) {
    snapshot_hits_.fetch_add(tally.snapshot_hits, std::memory_order_relaxed);
    snapshot_hits_metric_.add(tally.snapshot_hits);
  }
  if (tally.steps > 0) {
    steps_.fetch_add(tally.steps, std::memory_order_relaxed);
    steps_metric_.add(tally.steps);
  }
  if (tally.arena_extensions > 0) {
    arena_extensions_.fetch_add(tally.arena_extensions,
                                std::memory_order_relaxed);
    arena_extensions_metric_.add(tally.arena_extensions);
  }
}

void ErlangKernel::maybe_publish() {
  Arena* arena = registered_local_arena();
  if (arena != nullptr && arena->doubles > kArenaWatermark) {
    publish();
  }
}

double ErlangKernel::erlang_b(std::uint64_t servers, double rho) {
  VMCONS_REQUIRE(rho >= 0.0, "offered load must be >= 0");
  if (rho == 0.0) {
    return servers == 0 ? 1.0 : 0.0;
  }
  const SnapshotPtr snapshot = load_snapshot();
  Tally tally;
  double result;
  try {
    result = eval_one(*snapshot, servers, rho, tally);
  } catch (...) {
    flush(tally);
    throw;
  }
  flush(tally);
  maybe_publish();
  return result;
}

double ErlangKernel::log_erlang_b(std::uint64_t servers, double rho) {
  VMCONS_REQUIRE(rho >= 0.0, "offered load must be >= 0");
  if (rho == 0.0) {
    return servers == 0 ? 0.0 : -std::numeric_limits<double>::infinity();
  }
  Tally tally;
  ++tally.evaluations;
  const double result = log_erlang_b_plain(servers, rho, tally.steps);
  flush(tally);
  return result;
}

std::uint64_t ErlangKernel::erlang_b_servers(double rho,
                                             double target_blocking) {
  VMCONS_REQUIRE(rho >= 0.0, "offered load must be >= 0");
  VMCONS_REQUIRE(target_blocking > 0.0 && target_blocking <= 1.0,
                 "target blocking must be in (0, 1]");
  if (rho == 0.0) {
    return 0;
  }
  const SnapshotPtr snapshot = load_snapshot();
  Tally tally;
  std::uint64_t result;
  try {
    result = staff_one(*snapshot, rho, target_blocking, tally);
  } catch (...) {
    flush(tally);
    throw;
  }
  flush(tally);
  maybe_publish();
  return result;
}

void ErlangKernel::eval_many(std::span<const BlockingQuery> queries,
                             std::span<double> out) {
  VMCONS_REQUIRE(queries.size() == out.size(),
                 "eval_many needs one output slot per query");
  for (const BlockingQuery& query : queries) {
    VMCONS_REQUIRE(query.rho >= 0.0, "offered load must be >= 0");
  }
  // Sort by (rho, servers): queries against the same recursion state become
  // adjacent, and within a state the covered prefix only ever grows
  // forward. Each caller sorts its own span, so concurrent walks proceed
  // independently against one shared snapshot load.
  std::vector<std::uint32_t> order(queries.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (queries[a].rho != queries[b].rho) {
                return queries[a].rho < queries[b].rho;
              }
              return queries[a].servers < queries[b].servers;
            });
  const SnapshotPtr snapshot = load_snapshot();
  Tally tally;
  try {
    for (const std::uint32_t i : order) {
      const BlockingQuery& query = queries[i];
      out[i] = query.rho == 0.0
                   ? (query.servers == 0 ? 1.0 : 0.0)
                   : eval_one(*snapshot, query.servers, query.rho, tally);
    }
  } catch (...) {
    flush(tally);
    throw;
  }
  flush(tally);
  maybe_publish();
}

void ErlangKernel::servers_for_many(std::span<const StaffingQuery> queries,
                                    std::span<std::uint64_t> out) {
  VMCONS_REQUIRE(queries.size() == out.size(),
                 "servers_for_many needs one output slot per query");
  for (const StaffingQuery& query : queries) {
    VMCONS_REQUIRE(query.rho >= 0.0, "offered load must be >= 0");
    VMCONS_REQUIRE(
        query.target_blocking > 0.0 && query.target_blocking <= 1.0,
        "target blocking must be in (0, 1]");
  }
  // Sort by (rho, descending target): looser targets need shorter prefixes,
  // so each state's recursion is resumed, never restarted.
  std::vector<std::uint32_t> order(queries.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (queries[a].rho != queries[b].rho) {
                return queries[a].rho < queries[b].rho;
              }
              return queries[a].target_blocking > queries[b].target_blocking;
            });
  const SnapshotPtr snapshot = load_snapshot();
  Tally tally;
  try {
    for (const std::uint32_t i : order) {
      const StaffingQuery& query = queries[i];
      out[i] = query.rho == 0.0
                   ? 0
                   : staff_one(*snapshot, query.rho, query.target_blocking,
                               tally);
    }
  } catch (...) {
    flush(tally);
    throw;
  }
  flush(tally);
  maybe_publish();
}

double ErlangKernel::erlang_b_capacity(std::uint64_t servers,
                                       double target_blocking) {
  VMCONS_REQUIRE(servers >= 1, "capacity inverse needs at least one server");
  VMCONS_REQUIRE(target_blocking > 0.0 && target_blocking < 1.0,
                 "target blocking must be in (0, 1)");
  const double log_target = std::log(target_blocking);
  const double n = static_cast<double>(servers);
  Tally tally;

  // Bracket exactly like the bisection version, but in the log domain.
  double lo = 0.0;
  double hi = n;
  ++tally.evaluations;
  while (log_erlang_b_plain(servers, hi, tally.steps) < log_target) {
    hi *= 2.0;
    ++tally.evaluations;
    if (hi > 1e12) {
      flush(tally);
      throw NumericError("erlang_b_capacity failed to bracket");
    }
  }

  // Safeguarded Newton on f(rho) = log E_n(rho) - log B, using the closed
  // form dE/drho = E * (n/rho - 1 + E) => f'(rho) = n/rho - 1 + E. Any step
  // leaving the bracket falls back to bisection, so worst case matches the
  // plain bisection; typical case converges in < 10 evaluations.
  double rho = hi;
  for (int iteration = 0; iteration < 200; ++iteration) {
    const double log_e = log_erlang_b_plain(servers, rho, tally.steps);
    ++tally.evaluations;
    const double f = log_e - log_target;
    if (std::abs(f) < 1e-14) {
      break;
    }
    if (f < 0.0) {
      lo = rho;
    } else {
      hi = rho;
    }
    if (hi - lo < 1e-13 * (1.0 + hi)) {
      rho = 0.5 * (lo + hi);
      break;
    }
    const double derivative = n / rho - 1.0 + std::exp(log_e);
    double next = rho - f / derivative;
    if (!std::isfinite(next) || next <= lo || next >= hi) {
      next = 0.5 * (lo + hi);
    }
    rho = next;
  }

  flush(tally);
  return rho;
}

void ErlangKernel::publish() {
  Arena* own = registered_local_arena();
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t serial = serial_.load(std::memory_order_relaxed);
  const SnapshotPtr old_snapshot = load_snapshot();
  auto next = std::make_shared<Snapshot>();
  next->version = old_snapshot->version + 1;
  next->states = old_snapshot->states;  // shallow: prefixes are shared
  next->doubles = old_snapshot->doubles;

  for (const auto& arena_ptr : arenas_) {
    Arena& arena = *arena_ptr;
    if (arena.serial != serial) {
      continue;  // orphaned by clear(); excluded from new snapshots
    }
    std::lock_guard<std::mutex> arena_lock(arena.m);
    for (const auto& [key, state] : arena.states) {
      const std::size_t combined = state.combined();
      const auto it = next->states.find(key);
      const std::size_t have =
          it != next->states.end() ? it->second.prefix->size() : 0;
      if (combined <= have) {
        continue;
      }
      // The recurrence is deterministic, so every thread's extension of
      // this rho agrees bit-for-bit on shared indices: the union is simply
      // the longest prefix.
      auto merged = std::make_shared<Prefix>();
      merged->reserve(combined);
      if (state.base) {
        merged->insert(merged->end(), state.base->begin(), state.base->end());
      }
      merged->insert(merged->end(), state.ext.begin(), state.ext.end());
      next->doubles += combined - have;
      next->states[key] = SnapshotEntry{std::move(merged), next->version};
    }
    if (&arena == own) {
      // Only the owner may mutate (its lock-free read path allows no other
      // writer); foreign arenas self-clean on their owner's next query.
      arena.states.clear();
      arena.doubles = 0;
    }
  }

  // Bound the published tier: least-recently-merged states go first.
  while (next->states.size() > max_states_ ||
         (next->doubles > kPrefixBudget && !next->states.empty())) {
    auto victim = next->states.begin();
    for (auto it = next->states.begin(); it != next->states.end(); ++it) {
      if (it->second.touched < victim->second.touched) {
        victim = it;
      }
    }
    next->doubles -= victim->second.prefix->size();
    next->states.erase(victim);
  }

  snapshot_.store(std::move(next), std::memory_order_release);
  merges_.fetch_add(1, std::memory_order_relaxed);
  merges_metric_.add();
}

ErlangKernel::Stats ErlangKernel::stats() const {
  Stats stats;
  stats.evaluations = evaluations_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  stats.steps = steps_.load(std::memory_order_relaxed);
  stats.snapshot_hits = snapshot_hits_.load(std::memory_order_relaxed);
  stats.arena_extensions = arena_extensions_.load(std::memory_order_relaxed);
  stats.merges = merges_.load(std::memory_order_relaxed);
  return stats;
}

void ErlangKernel::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  // A new generation orphans every registered arena (threads re-register on
  // their next query); orphaned arenas are retained until destruction so a
  // concurrent query can never touch freed memory.
  serial_.store(g_kernel_serial.fetch_add(1, std::memory_order_relaxed),
                std::memory_order_release);
  snapshot_.store(std::make_shared<const Snapshot>(),
                  std::memory_order_release);
  evaluations_.store(0, std::memory_order_relaxed);
  cache_hits_.store(0, std::memory_order_relaxed);
  snapshot_hits_.store(0, std::memory_order_relaxed);
  steps_.store(0, std::memory_order_relaxed);
  arena_extensions_.store(0, std::memory_order_relaxed);
  merges_.store(0, std::memory_order_relaxed);
}

ErlangKernel& ErlangKernel::shared() {
  static ErlangKernel kernel;
  return kernel;
}

}  // namespace vmcons::queueing
