#include "queueing/erlang_kernel.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "util/error.hpp"
#include "util/simd.hpp"

namespace vmcons::queueing {
namespace {

// Memory bounds: one cached prefix never stores more than kMaxStatePrefix
// doubles (16 MB), and a published snapshot stays under kPrefixBudget
// doubles (32 MB) by evicting least-recently-merged states at publish time.
// Queries beyond the per-state cap still answer correctly; the tail of the
// recursion just runs uncached.
constexpr std::size_t kMaxStatePrefix = std::size_t{1} << 21;
constexpr std::size_t kPrefixBudget = std::size_t{1} << 22;

// A thread whose private arena exceeds this many extension doubles (512 KB)
// folds it into a fresh snapshot, so arenas stay small and other threads
// start hitting the published prefixes instead of re-deriving them.
constexpr std::size_t kArenaWatermark = std::size_t{1} << 16;

/// Monotonically increasing kernel-generation ids. Never reused, so a
/// thread-local arena pointer keyed by a retired serial can never collide
/// with a live kernel.
std::atomic<std::uint64_t> g_kernel_serial{1};

/// The erlang.hpp convergence guard, kept bit-for-bit identical so the
/// kernel throws exactly where the free function does.
std::uint64_t servers_limit(double rho) {
  return static_cast<std::uint64_t>(rho + 50.0 * std::sqrt(rho) + 64.0);
}

/// log E_n(rho) via the inverse recurrence I_n = 1 + (n/rho) I_{n-1}
/// run on log I_n, which stays finite for any (n, rho).
double log_erlang_b_plain(std::uint64_t servers, double rho,
                          std::uint64_t& steps) {
  double log_inverse = 0.0;  // log I_0 = log 1
  for (std::uint64_t k = 1; k <= servers; ++k) {
    const double x = std::log(static_cast<double>(k) / rho) + log_inverse;
    log_inverse =
        x > 0.0 ? x + std::log1p(std::exp(-x)) : std::log1p(std::exp(x));
    ++steps;
  }
  return -log_inverse;
}

/// First index whose (strictly decreasing) value is <= target, or size().
template <typename Vec>
std::size_t descending_lower_bound(const Vec& values, double target) {
  const auto it = std::lower_bound(
      values.begin(), values.end(), target,
      [](double blocking, double t) { return blocking > t; });
  return static_cast<std::size_t>(it - values.begin());
}

// --- Multi-lane recurrence engine ----------------------------------------
//
// The sorted batch walks group queries by distinct rho; each group that
// outruns its cached prefix becomes one LaneTask — an independent
// continuation of that rho's recurrence. run_lane_tasks advances up to
// kRecurrenceLanes tasks in lockstep: the per-step loop over lanes has no
// loop-carried dependence (each lane is its own chain), so the W
// independent divide chains run at divider throughput instead of the
// ~15-cycle divide latency that serializes the scalar walk.
//
// The inner loop is completely branch- and mask-free on purpose. The
// recurrence has no stopping-dependent state: advancing a lane past its
// stop point just computes E_{n+1}, E_{n+2}, ... — values that are still
// bit-correct members of that rho's prefix. So every lane runs
// unconditionally for a whole block, and stop conditions (count reached,
// target reached, convergence limit) are resolved once per block from the
// staged values, off the hot chain. A retired lane idles at the absorbing
// state blk = 0 (0 / n stays 0, no subnormals, no traps) until refilled
// from the pending tasks; leftover tasks are the scalar tail, a block with
// fewer live lanes.
//
// Bit-identity: an active lane executes exactly the scalar sequence
// E_n = rho E_{n-1} / (n + rho E_{n-1}) with n counting up by 1 — the same
// operations on the same operands in the same order as eval_one/staff_one —
// and lanes never mix, so every value appended to a prefix is bit-for-bit
// the value the scalar walk would have appended. Values computed past a
// stop point are simply discarded, never appended.

constexpr std::size_t kLanes = util::simd::kRecurrenceLanes;
/// Steps per lockstep block: bounds the scratch footprint (kLaneBlock *
/// kLanes doubles = 16 KB at 8 lanes), the work a lane wastes past its
/// stop point, and the overshoot past a staffing walk's convergence limit.
constexpr std::size_t kLaneBlock = 256;

/// One rho's recurrence continuation. Count-driven tasks (eval_many)
/// produce exactly `remaining` values; target-driven tasks
/// (servers_for_many) run until the value drops to `target` (with `limit`
/// as the scalar walk's convergence guard). The lane's index counter lives
/// in a double (exact far below 2^53) so the whole lockstep state shares
/// one vector domain.
struct LaneTask {
  std::vector<double>* ext = nullptr;  ///< produced values append here
  double rho = 1.0;
  double start_value = 1.0;  ///< last covered prefix value
  double start_index = 1.0;  ///< absolute index of that value
  double target = -1.0;      ///< stop at first value <= target (-1 = count
                             ///< mode; real blocking values are >= 0)
  std::size_t remaining = 0;  ///< count mode: values left to produce
  std::uint64_t limit = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t grown = 0;  ///< out: values actually appended
  bool overflowed = false;  ///< out: limit breached before target
};

/// Finish a count-mode task whose value has decayed below DBL_MIN.
///
/// Deep prefix extensions (blocking evaluated at an N set by a different,
/// busier resource) walk E_n far past rho, where the value goes subnormal
/// around n ~ 1.76 rho and then *hovers* in the subnormal range until
/// n = 2 rho before underflowing to exact zero (k = 1 rounds back to 1
/// while rho/n > 1/2). Subnormal operands cost a ~100 ns microcode assist
/// per operation — and one hovering lane slows every packed op for the
/// whole lane block — so the lockstep walk hands these tails over here.
///
/// Bit-identity is preserved by exact emulation, not approximation: a
/// subnormal double is an integer count k of 2^-1074 units, the addend
/// rho*E is below half an ulp of n (so n + load == n exactly), and both
/// the multiply's and the divide's round-to-nearest-even land back on the
/// same 2^-1074 grid — integer shifts and divides reproduce them
/// bit-for-bit. Steps outside the emulable regime (product rounds into
/// the normal range, oversized rho) fall back to the plain FP step, which
/// is exact by definition. From the first exact zero on, every later
/// value is zero (rho*0 = 0, 0/n = 0), already supplied by resize().
void finish_subnormal_tail(LaneTask& task, double value, double n_start) {
  std::vector<double>& ext = *task.ext;
  const std::size_t old = ext.size();
  ext.resize(old + task.remaining);  // value-initialized: the zero tail
  double* __restrict__ out = ext.data() + old;

  int rho_exp = 0;
  const double rho_mant = std::frexp(task.rho, &rho_exp);
  // rho = mant53 * 2^(rho_exp - 53) with mant53 in [2^52, 2^53), exact.
  const std::uint64_t mant53 =
      static_cast<std::uint64_t>(std::ldexp(rho_mant, 53));
  const int shift = 53 - rho_exp;
  constexpr std::uint64_t kTopBit = std::uint64_t{1} << 52;

  double n_d = n_start;
  std::uint64_t n_i = static_cast<std::uint64_t>(n_start);
  std::size_t i = 0;
  while (i < task.remaining && value != 0.0) {
    n_d += 1.0;
    ++n_i;
    const std::uint64_t k = std::bit_cast<std::uint64_t>(value);
    bool stepped = false;
    if (k < kTopBit && shift >= 0) {
      // Subnormal value: k units of 2^-1074. The product rho * value in
      // those units is P / 2^shift with P = k * mant53 (<= 105 bits).
      __extension__ using U128 = unsigned __int128;
      const U128 P = static_cast<U128>(k) * mant53;
      U128 j = 0;
      bool exact = false;
      if (shift == 0) {
        j = P;
        exact = true;
      } else if (shift >= 107) {
        j = 0;  // P < 2^106 < 2^(shift-1): rounds to zero
        exact = true;
      } else {
        const U128 half = static_cast<U128>(1) << (shift - 1);
        const U128 frac = P & ((half << 1) - 1);
        j = P >> shift;
        if (frac > half || (frac == half && (j & 1))) {
          ++j;
        }
        exact = true;
      }
      if (exact && j < kTopBit) {
        // Product stayed subnormal, so n + load == n exactly and the
        // divide rounds j / n back onto the 2^-1074 grid.
        std::uint64_t q = static_cast<std::uint64_t>(j) / n_i;
        const std::uint64_t r = static_cast<std::uint64_t>(j) % n_i;
        if (2 * r > n_i || (2 * r == n_i && (q & 1))) {
          ++q;
        }
        value = std::bit_cast<double>(q);
        stepped = true;
      }
    }
    if (!stepped) {
      // Transition band (product rounds into the normal range): one plain
      // FP step, exact by definition. At most ~log2(rho) such steps.
      const double load = task.rho * value;
      value = load / (n_d + load);
    }
    out[i++] = value;
  }
  task.grown += task.remaining;
  task.remaining = 0;
}

void run_lane_tasks(std::vector<LaneTask>& tasks) {
  using Lanes = util::simd::Pack<kLanes>;
  Lanes rho = Lanes::broadcast(1.0);
  Lanes blk = Lanes::broadcast(0.0);
  Lanes n = Lanes::broadcast(1.0);
  std::array<LaneTask*, kLanes> slot{};
  std::size_t next = 0;
  std::size_t active = 0;
  alignas(64) std::array<double, kLaneBlock * kLanes> scratch;

  const auto load_lane = [&](std::size_t lane, LaneTask* task) {
    slot[lane] = task;
    rho.v[lane] = task->rho;
    blk.v[lane] = task->start_value;
    n.v[lane] = task->start_index;
    ++active;
  };
  const auto unload_lane = [&](std::size_t lane) {
    // Idle lanes sit in the absorbing state blk = 0: rho*0 = 0 and 0/n = 0,
    // so the dead lane's divides stay fast (no subnormals) and harmless.
    slot[lane] = nullptr;
    rho.v[lane] = 1.0;
    blk.v[lane] = 0.0;
    n.v[lane] = 1.0;
    --active;
  };
  /// Append the first `count` staged values of `lane` to the task's prefix.
  const auto drain = [&](LaneTask& task, std::size_t lane,
                         std::size_t count) {
    std::vector<double>& ext = *task.ext;
    const std::size_t old = ext.size();
    ext.resize(old + count);
    std::memcpy(ext.data() + old, scratch.data() + lane * kLaneBlock,
                count * sizeof(double));
    task.grown += count;
  };

  while (true) {
    for (std::size_t lane = 0; lane < kLanes && next < tasks.size(); ++lane) {
      // Tasks already completed at plan time (subnormal-tail shortcut)
      // carry remaining == 0 and never occupy a lane.
      while (next < tasks.size() && tasks[next].target < 0.0 &&
             tasks[next].remaining == 0) {
        ++next;
      }
      if (next < tasks.size() && slot[lane] == nullptr) {
        load_lane(lane, &tasks[next++]);
      }
    }
    if (active == 0) {
      break;
    }
    // Shrink the block when every live lane is a small count-mode task, so
    // short extensions don't pay for a full block of discarded work.
    std::size_t steps = 0;
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      if (const LaneTask* task = slot[lane]; task != nullptr) {
        const std::size_t want =
            task->target < 0.0 ? task->remaining : kLaneBlock;
        steps = std::max(steps, std::min(want, kLaneBlock));
      }
    }
    const Lanes one = Lanes::broadcast(1.0);
    for (std::size_t s = 0; s < steps; ++s) {
      n = n + one;
      const Lanes load = rho * blk;
      blk = load / (n + load);
      // Lane-major scatter: lane l's column is contiguous at
      // scratch[l * kLaneBlock ...], so drain is one memcpy per lane
      // instead of a strided gather (one cache line per element).
      for (std::size_t l = 0; l < kLanes; ++l) {
        scratch[l * kLaneBlock + s] = blk.v[l];
      }
    }
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      LaneTask* task = slot[lane];
      if (task == nullptr) {
        continue;
      }
      if (task->target < 0.0) {
        // Count mode: keep exactly the requested values; anything the lane
        // computed past them is discarded (it was valid, just unwanted).
        const std::size_t produced = std::min(task->remaining, steps);
        drain(*task, lane, produced);
        task->remaining -= produced;
        if (task->remaining == 0) {
          unload_lane(lane);
        } else if (blk.v[lane] < std::numeric_limits<double>::min()) {
          // The lane decayed below DBL_MIN: hand the rest to the integer
          // subnormal tail before its microcode assists stall the pack.
          finish_subnormal_tail(*task, blk.v[lane], n.v[lane]);
          unload_lane(lane);
        }
      } else if (scratch[lane * kLaneBlock + (steps - 1)] > task->target) {
        // Target mode, no stop in this block (the column is decreasing, so
        // its last value decides): keep everything and continue — unless
        // the walk has outrun the scalar convergence guard.
        drain(*task, lane, steps);
        if (static_cast<std::uint64_t>(n.v[lane]) > task->limit) {
          task->overflowed = true;
          unload_lane(lane);
        }
      } else {
        // Target mode, stop inside this block: keep values up to and
        // including the first one at or below the target — exactly where
        // the scalar walk's per-step test would have halted.
        const double* const col = scratch.data() + lane * kLaneBlock;
        std::size_t stop = 0;
        while (col[stop] > task->target) {
          ++stop;
        }
        const std::size_t produced = stop + 1;
        drain(*task, lane, produced);
        // The scalar walk throws if it reaches limit + 1 still searching;
        // mirror that even when the stop value itself lands past it.
        const double stop_index =
            n.v[lane] - static_cast<double>(steps - produced);
        if (static_cast<std::uint64_t>(stop_index) > task->limit) {
          task->overflowed = true;
        }
        unload_lane(lane);
      }
    }
  }
}

}  // namespace

/// One thread's private extension tier. The owning thread mutates it only
/// under `m`; publish() reads it under `m`; the owner's own reads need no
/// lock (it is the only writer). Entries are dropped by the owner once the
/// snapshot covers them, so arenas stay transient.
struct ErlangKernel::Arena {
  /// Continuation of one rho's recurrence: values before `base->size()`
  /// live in the immutable snapshot prefix `base` (null when the rho was
  /// never published), values at index base_len + i live in ext[i].
  struct Extension {
    PrefixPtr base;
    std::vector<double> ext;
    std::size_t base_len() const noexcept { return base ? base->size() : 0; }
    std::size_t combined() const noexcept { return base_len() + ext.size(); }
    double value_at(std::uint64_t n) const {
      return n < base_len() ? (*base)[n] : ext[n - base_len()];
    }
    double last() const { return ext.empty() ? base->back() : ext.back(); }
  };

  std::mutex m;
  std::unordered_map<std::uint64_t, Extension> states;  // key: rho bits
  std::size_t doubles = 0;  ///< sum of ext sizes — the merge watermark gauge
  std::uint64_t serial = 0;  ///< kernel generation this arena belongs to

  /// The slot for rho, created from (or rebased onto) the snapshot's
  /// prefix. Requires `m` held by the owning thread.
  Extension& state_for(const Snapshot& snapshot, std::uint64_t key) {
    PrefixPtr published;
    if (const auto it = snapshot.states.find(key);
        it != snapshot.states.end()) {
      published = it->second.prefix;
    }
    auto [it, inserted] = states.try_emplace(key);
    Extension& state = it->second;
    if (inserted) {
      if (published) {
        state.base = std::move(published);
      } else {
        state.ext.push_back(1.0);  // E_0 — seeded, not a recurrence step
        ++doubles;
      }
    } else if (published && published->size() > state.combined()) {
      // A merge published a longer prefix (bit-identical to anything this
      // arena derived): adopt it and drop the now-redundant extension.
      doubles -= state.ext.size();
      state.ext.clear();
      state.base = std::move(published);
    }
    return state;
  }
};

ErlangKernel::ErlangKernel(std::size_t max_states)
    : snapshot_(std::make_shared<const Snapshot>()),
      serial_(g_kernel_serial.fetch_add(1, std::memory_order_relaxed)),
      max_states_(std::max<std::size_t>(1, max_states)),
      evaluations_metric_(
          metrics::registry().counter(metrics::names::kErlangEvaluations)),
      cache_hits_metric_(
          metrics::registry().counter(metrics::names::kErlangCacheHits)),
      steps_metric_(metrics::registry().counter(metrics::names::kErlangSteps)),
      snapshot_hits_metric_(
          metrics::registry().counter(metrics::names::kErlangSnapshotHits)),
      arena_extensions_metric_(
          metrics::registry().counter(metrics::names::kErlangArenaExtensions)),
      merges_metric_(
          metrics::registry().counter(metrics::names::kErlangMerges)) {}

ErlangKernel::~ErlangKernel() = default;

ErlangKernel::SnapshotPtr ErlangKernel::load_snapshot() const {
  return snapshot_.load(std::memory_order_acquire);
}

std::unordered_map<std::uint64_t, ErlangKernel::Arena*>&
ErlangKernel::thread_arena_map() {
  // Keyed by kernel serial (never reused), so entries for destroyed or
  // cleared kernels simply go stale; they are never dereferenced again.
  thread_local std::unordered_map<std::uint64_t, Arena*> map;
  return map;
}

ErlangKernel::Arena& ErlangKernel::local_arena() {
  auto& map = thread_arena_map();
  if (const auto it = map.find(serial_.load(std::memory_order_acquire));
      it != map.end()) {
    return *it->second;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  // Re-read under the lock: a concurrent clear() may have bumped the
  // generation between the fast-path lookup and here.
  const std::uint64_t serial = serial_.load(std::memory_order_relaxed);
  if (const auto it = map.find(serial); it != map.end()) {
    return *it->second;
  }
  arenas_.push_back(std::make_unique<Arena>());
  Arena* arena = arenas_.back().get();
  arena->serial = serial;
  map.emplace(serial, arena);
  return *arena;
}

ErlangKernel::Arena* ErlangKernel::registered_local_arena() const {
  auto& map = thread_arena_map();
  const auto it = map.find(serial_.load(std::memory_order_acquire));
  return it != map.end() ? it->second : nullptr;
}

double ErlangKernel::eval_one(const Snapshot& snapshot, std::uint64_t servers,
                              double rho, Tally& tally) {
  ++tally.evaluations;
  const std::uint64_t key = std::bit_cast<std::uint64_t>(rho);
  if (const auto it = snapshot.states.find(key);
      it != snapshot.states.end() && it->second.prefix->size() > servers) {
    ++tally.cache_hits;
    ++tally.snapshot_hits;
    return (*it->second.prefix)[servers];
  }
  Arena& arena = local_arena();
  std::lock_guard<std::mutex> lock(arena.m);
  Arena::Extension& state = arena.state_for(snapshot, key);
  std::size_t covered = state.combined();
  if (servers < covered) {
    ++tally.cache_hits;
    return state.value_at(servers);
  }
  // Resume the recurrence privately where the covered prefix ends.
  double blocking = state.last();
  const std::uint64_t cap =
      std::min<std::uint64_t>(servers, kMaxStatePrefix - 1);
  std::uint64_t grown = 0;
  for (std::uint64_t n = covered; n <= cap; ++n) {
    blocking = rho * blocking / (static_cast<double>(n) + rho * blocking);
    state.ext.push_back(blocking);
    ++grown;
  }
  if (grown > 0) {
    tally.steps += grown;
    arena.doubles += grown;
    ++tally.arena_extensions;
  }
  covered += grown;
  if (servers < covered) {
    return state.value_at(servers);
  }
  // Beyond the per-state cache cap: finish the recursion uncached.
  std::uint64_t uncached = 0;
  for (std::uint64_t n = covered; n <= servers; ++n) {
    blocking = rho * blocking / (static_cast<double>(n) + rho * blocking);
    ++uncached;
  }
  tally.steps += uncached;
  return blocking;
}

std::uint64_t ErlangKernel::staff_one(const Snapshot& snapshot, double rho,
                                      double target_blocking, Tally& tally) {
  ++tally.evaluations;
  const std::uint64_t key = std::bit_cast<std::uint64_t>(rho);
  if (const auto it = snapshot.states.find(key); it != snapshot.states.end()) {
    // E_n is strictly decreasing in n for rho > 0, so the prefix is sorted
    // descending: the answer is in it iff its last entry is <= target.
    const Prefix& prefix = *it->second.prefix;
    if (prefix.back() <= target_blocking) {
      ++tally.cache_hits;
      ++tally.snapshot_hits;
      return descending_lower_bound(prefix, target_blocking);
    }
  }
  Arena& arena = local_arena();
  std::lock_guard<std::mutex> lock(arena.m);
  Arena::Extension& state = arena.state_for(snapshot, key);
  if (state.base && state.base->back() <= target_blocking) {
    ++tally.cache_hits;
    return descending_lower_bound(*state.base, target_blocking);
  }
  if (!state.ext.empty() && state.ext.back() <= target_blocking) {
    ++tally.cache_hits;
    return state.base_len() +
           descending_lower_bound(state.ext, target_blocking);
  }
  // Resume the recursion where the covered prefix ends instead of from E_0.
  const std::uint64_t limit = servers_limit(rho);
  double blocking = state.last();
  std::uint64_t n = state.combined() - 1;
  std::uint64_t grown = 0;
  std::uint64_t uncached = 0;
  const auto settle = [&] {
    tally.steps += grown + uncached;
    arena.doubles += grown;
    if (grown > 0) {
      ++tally.arena_extensions;
    }
  };
  while (blocking > target_blocking) {
    ++n;
    blocking = rho * blocking / (static_cast<double>(n) + rho * blocking);
    if (n < kMaxStatePrefix) {
      state.ext.push_back(blocking);
      ++grown;
    } else {
      ++uncached;
    }
    if (n > limit) {
      settle();
      throw NumericError("erlang_b_servers failed to converge");
    }
  }
  settle();
  return n;
}

void ErlangKernel::flush(const Tally& tally) {
  if (tally.evaluations > 0) {
    evaluations_.fetch_add(tally.evaluations, std::memory_order_relaxed);
    evaluations_metric_.add(tally.evaluations);
  }
  if (tally.cache_hits > 0) {
    cache_hits_.fetch_add(tally.cache_hits, std::memory_order_relaxed);
    cache_hits_metric_.add(tally.cache_hits);
  }
  if (tally.snapshot_hits > 0) {
    snapshot_hits_.fetch_add(tally.snapshot_hits, std::memory_order_relaxed);
    snapshot_hits_metric_.add(tally.snapshot_hits);
  }
  if (tally.steps > 0) {
    steps_.fetch_add(tally.steps, std::memory_order_relaxed);
    steps_metric_.add(tally.steps);
  }
  if (tally.arena_extensions > 0) {
    arena_extensions_.fetch_add(tally.arena_extensions,
                                std::memory_order_relaxed);
    arena_extensions_metric_.add(tally.arena_extensions);
  }
}

void ErlangKernel::maybe_publish() {
  Arena* arena = registered_local_arena();
  if (arena != nullptr && arena->doubles > kArenaWatermark) {
    publish();
  }
}

double ErlangKernel::erlang_b(std::uint64_t servers, double rho) {
  VMCONS_REQUIRE(rho >= 0.0, "offered load must be >= 0");
  if (rho == 0.0) {
    return servers == 0 ? 1.0 : 0.0;
  }
  const SnapshotPtr snapshot = load_snapshot();
  Tally tally;
  double result;
  try {
    result = eval_one(*snapshot, servers, rho, tally);
  } catch (...) {
    flush(tally);
    throw;
  }
  flush(tally);
  maybe_publish();
  return result;
}

double ErlangKernel::log_erlang_b(std::uint64_t servers, double rho) {
  VMCONS_REQUIRE(rho >= 0.0, "offered load must be >= 0");
  if (rho == 0.0) {
    return servers == 0 ? 0.0 : -std::numeric_limits<double>::infinity();
  }
  Tally tally;
  ++tally.evaluations;
  const double result = log_erlang_b_plain(servers, rho, tally.steps);
  flush(tally);
  return result;
}

std::uint64_t ErlangKernel::erlang_b_servers(double rho,
                                             double target_blocking) {
  VMCONS_REQUIRE(rho >= 0.0, "offered load must be >= 0");
  VMCONS_REQUIRE(target_blocking > 0.0 && target_blocking <= 1.0,
                 "target blocking must be in (0, 1]");
  if (rho == 0.0) {
    return 0;
  }
  const SnapshotPtr snapshot = load_snapshot();
  Tally tally;
  std::uint64_t result;
  try {
    result = staff_one(*snapshot, rho, target_blocking, tally);
  } catch (...) {
    flush(tally);
    throw;
  }
  flush(tally);
  maybe_publish();
  return result;
}

void ErlangKernel::eval_many(std::span<const BlockingQuery> queries,
                             std::span<double> out) {
  VMCONS_REQUIRE(queries.size() == out.size(),
                 "eval_many needs one output slot per query");
  for (const BlockingQuery& query : queries) {
    VMCONS_REQUIRE(query.rho >= 0.0, "offered load must be >= 0");
  }
  // Sort by (rho, servers): queries against the same recursion state become
  // adjacent, and within a state the covered prefix only ever grows
  // forward. Each caller sorts its own span, so concurrent walks proceed
  // independently against one shared snapshot load.
  std::vector<std::uint32_t> order(queries.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (queries[a].rho != queries[b].rho) {
                return queries[a].rho < queries[b].rho;
              }
              return queries[a].servers < queries[b].servers;
            });
  const SnapshotPtr snapshot = load_snapshot();
  Tally tally;

  // Plan → extend → answer. Each distinct rho becomes one group; groups
  // whose largest query outruns the cached prefix contribute one LaneTask,
  // and run_lane_tasks grows all of them together so independent rho
  // chains fill the divider pipeline. Every value appended is bit-identical
  // to the scalar walk (see the lane-engine comment above), so the answer
  // phase reads exactly the prefixes eval_one would have built.
  struct Group {
    std::size_t begin = 0;
    std::size_t end = 0;                ///< half-open range in `order`
    const Prefix* snap = nullptr;       ///< published prefix for this rho
    Arena::Extension* state = nullptr;  ///< arena continuation, if needed
    std::size_t covered_before = 0;     ///< prefix length before growth
  };
  std::vector<Group> groups;
  std::vector<LaneTask> tasks;
  Arena* arena = nullptr;
  std::unique_lock<std::mutex> arena_lock;
  try {
    for (std::size_t pos = 0; pos < order.size();) {
      const double rho = queries[order[pos]].rho;
      Group group;
      group.begin = pos;
      while (pos < order.size() && queries[order[pos]].rho == rho) {
        ++pos;
      }
      group.end = pos;
      if (rho == 0.0) {
        for (std::size_t q = group.begin; q < group.end; ++q) {
          out[order[q]] = queries[order[q]].servers == 0 ? 1.0 : 0.0;
        }
        continue;
      }
      const std::uint64_t key = std::bit_cast<std::uint64_t>(rho);
      if (const auto it = snapshot->states.find(key);
          it != snapshot->states.end()) {
        group.snap = it->second.prefix.get();
      }
      const std::uint64_t max_servers = queries[order[group.end - 1]].servers;
      if (group.snap == nullptr || group.snap->size() <= max_servers) {
        if (arena == nullptr) {
          arena = &local_arena();
          arena_lock = std::unique_lock<std::mutex>(arena->m);
        }
        group.state = &arena->state_for(*snapshot, key);
        group.covered_before = group.state->combined();
        const std::uint64_t cap =
            std::min<std::uint64_t>(max_servers, kMaxStatePrefix - 1);
        if (cap + 1 > group.covered_before) {
          const std::uint64_t need = cap + 1 - group.covered_before;
          group.state->ext.reserve(group.state->ext.size() + need);
          LaneTask task;
          task.ext = &group.state->ext;
          task.rho = rho;
          task.start_value = group.state->last();
          task.start_index = static_cast<double>(group.covered_before - 1);
          task.remaining = static_cast<std::size_t>(need);
          if (task.start_value < std::numeric_limits<double>::min()) {
            // Already below DBL_MIN: the whole extension is subnormal
            // hover + zeros. Skip the lanes and run the integer tail now.
            finish_subnormal_tail(task, task.start_value, task.start_index);
          }
          tasks.push_back(task);
        }
      }
      groups.push_back(group);
    }

    run_lane_tasks(tasks);
    for (const LaneTask& task : tasks) {
      tally.steps += task.grown;
      arena->doubles += task.grown;
      if (task.grown > 0) {
        ++tally.arena_extensions;
      }
    }

    for (const Group& group : groups) {
      for (std::size_t q = group.begin; q < group.end; ++q) {
        const std::uint32_t i = order[q];
        const BlockingQuery& query = queries[i];
        ++tally.evaluations;
        if (group.snap != nullptr && group.snap->size() > query.servers) {
          ++tally.cache_hits;
          ++tally.snapshot_hits;
          out[i] = (*group.snap)[query.servers];
          continue;
        }
        const Arena::Extension& state = *group.state;
        if (query.servers < group.covered_before) {
          ++tally.cache_hits;
        }
        if (query.servers < state.combined()) {
          out[i] = state.value_at(query.servers);
          continue;
        }
        // Beyond the per-state cache cap: finish this recursion uncached,
        // exactly as eval_one does.
        double blocking = state.last();
        std::uint64_t uncached = 0;
        for (std::uint64_t n = state.combined(); n <= query.servers; ++n) {
          blocking = query.rho * blocking /
                     (static_cast<double>(n) + query.rho * blocking);
          ++uncached;
        }
        tally.steps += uncached;
        out[i] = blocking;
      }
    }
  } catch (...) {
    flush(tally);
    throw;
  }
  if (arena_lock.owns_lock()) {
    arena_lock.unlock();
  }
  flush(tally);
  maybe_publish();
}

void ErlangKernel::servers_for_many(std::span<const StaffingQuery> queries,
                                    std::span<std::uint64_t> out) {
  VMCONS_REQUIRE(queries.size() == out.size(),
                 "servers_for_many needs one output slot per query");
  for (const StaffingQuery& query : queries) {
    VMCONS_REQUIRE(query.rho >= 0.0, "offered load must be >= 0");
    VMCONS_REQUIRE(
        query.target_blocking > 0.0 && query.target_blocking <= 1.0,
        "target blocking must be in (0, 1]");
  }
  // Sort by (rho, descending target): looser targets need shorter prefixes,
  // so each state's recursion is resumed, never restarted.
  std::vector<std::uint32_t> order(queries.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (queries[a].rho != queries[b].rho) {
                return queries[a].rho < queries[b].rho;
              }
              return queries[a].target_blocking > queries[b].target_blocking;
            });
  const SnapshotPtr snapshot = load_snapshot();
  Tally tally;

  // Plan → extend → answer, mirroring eval_many. The tightest (smallest)
  // target in a group — last in the descending sort — decides how far that
  // rho's prefix must grow; one target-driven LaneTask per group runs the
  // predicated lane-count update in run_lane_tasks, and every query is then
  // answered by binary search over the grown prefix, which lands on exactly
  // the index where the scalar walk's per-step branch would have stopped.
  struct Group {
    std::size_t begin = 0;
    std::size_t end = 0;                ///< half-open range in `order`
    const Prefix* snap = nullptr;       ///< published prefix for this rho
    Arena::Extension* state = nullptr;  ///< arena continuation, if needed
    double last_before = 1.0;           ///< prefix tail before growth
    bool fallback = false;              ///< huge-rho group: use staff_one
  };
  std::vector<Group> groups;
  std::vector<LaneTask> tasks;
  Arena* arena = nullptr;
  std::unique_lock<std::mutex> arena_lock;
  bool overflowed = false;
  try {
    for (std::size_t pos = 0; pos < order.size();) {
      const double rho = queries[order[pos]].rho;
      Group group;
      group.begin = pos;
      while (pos < order.size() && queries[order[pos]].rho == rho) {
        ++pos;
      }
      group.end = pos;
      if (rho == 0.0) {
        for (std::size_t q = group.begin; q < group.end; ++q) {
          out[order[q]] = 0;
        }
        continue;
      }
      const std::uint64_t key = std::bit_cast<std::uint64_t>(rho);
      if (const auto it = snapshot->states.find(key);
          it != snapshot->states.end()) {
        group.snap = it->second.prefix.get();
      }
      const double tightest = queries[order[group.end - 1]].target_blocking;
      if (group.snap != nullptr && group.snap->back() <= tightest) {
        groups.push_back(group);  // every answer is in the snapshot prefix
        continue;
      }
      const std::uint64_t limit = servers_limit(rho);
      if (limit + kLaneBlock + 1 >= kMaxStatePrefix) {
        // The walk could outrun the per-state cache cap, and the
        // block-granular lanes would cache past it; keep the scalar walk
        // (which switches to uncached steps at the cap) for huge rhos.
        group.fallback = true;
        groups.push_back(group);
        continue;
      }
      if (arena == nullptr) {
        arena = &local_arena();
        arena_lock = std::unique_lock<std::mutex>(arena->m);
      }
      group.state = &arena->state_for(*snapshot, key);
      group.last_before = group.state->last();
      if (group.last_before > tightest) {
        // Reserve up to the convergence guard plus one block of lane
        // overshoot so drain() never reallocates mid-walk (a realloc would
        // copy the whole grown prefix every doubling).
        const std::size_t cap_bound = limit + kLaneBlock + 2;
        const std::size_t combined = group.state->combined();
        if (cap_bound > combined) {
          group.state->ext.reserve(group.state->ext.size() +
                                   (cap_bound - combined));
        }
        LaneTask task;
        task.ext = &group.state->ext;
        task.rho = rho;
        task.start_value = group.last_before;
        task.start_index =
            static_cast<double>(group.state->combined() - 1);
        task.target = tightest;
        task.limit = limit;
        tasks.push_back(task);
      }
      groups.push_back(group);
    }

    run_lane_tasks(tasks);
    for (const LaneTask& task : tasks) {
      tally.steps += task.grown;
      arena->doubles += task.grown;
      if (task.grown > 0) {
        ++tally.arena_extensions;
      }
      overflowed = overflowed || task.overflowed;
    }
    if (overflowed) {
      throw NumericError("erlang_b_servers failed to converge");
    }

    for (const Group& group : groups) {
      if (group.fallback) {
        continue;  // answered below, after the arena lock drops
      }
      for (std::size_t q = group.begin; q < group.end; ++q) {
        const std::uint32_t i = order[q];
        const double target = queries[i].target_blocking;
        ++tally.evaluations;
        if (group.snap != nullptr && group.snap->back() <= target) {
          ++tally.cache_hits;
          ++tally.snapshot_hits;
          out[i] = descending_lower_bound(*group.snap, target);
          continue;
        }
        const Arena::Extension& state = *group.state;
        if (group.last_before <= target) {
          ++tally.cache_hits;
        }
        if (state.base && state.base->back() <= target) {
          out[i] = descending_lower_bound(*state.base, target);
        } else {
          out[i] =
              state.base_len() + descending_lower_bound(state.ext, target);
        }
      }
    }
  } catch (...) {
    flush(tally);
    throw;
  }
  if (arena_lock.owns_lock()) {
    arena_lock.unlock();
  }

  // Huge-rho fallback groups run the scalar walk; staff_one takes the
  // arena lock itself, so these must run after the batch lock is released.
  try {
    for (const Group& group : groups) {
      if (!group.fallback) {
        continue;
      }
      for (std::size_t q = group.begin; q < group.end; ++q) {
        const std::uint32_t i = order[q];
        out[i] = staff_one(*snapshot, queries[i].rho,
                           queries[i].target_blocking, tally);
      }
    }
  } catch (...) {
    flush(tally);
    throw;
  }
  flush(tally);
  maybe_publish();
}

double ErlangKernel::erlang_b_capacity(std::uint64_t servers,
                                       double target_blocking) {
  VMCONS_REQUIRE(servers >= 1, "capacity inverse needs at least one server");
  VMCONS_REQUIRE(target_blocking > 0.0 && target_blocking < 1.0,
                 "target blocking must be in (0, 1)");
  const double log_target = std::log(target_blocking);
  const double n = static_cast<double>(servers);
  Tally tally;

  // Bracket exactly like the bisection version, but in the log domain.
  double lo = 0.0;
  double hi = n;
  ++tally.evaluations;
  while (log_erlang_b_plain(servers, hi, tally.steps) < log_target) {
    hi *= 2.0;
    ++tally.evaluations;
    if (hi > 1e12) {
      flush(tally);
      throw NumericError("erlang_b_capacity failed to bracket");
    }
  }

  // Safeguarded Newton on f(rho) = log E_n(rho) - log B, using the closed
  // form dE/drho = E * (n/rho - 1 + E) => f'(rho) = n/rho - 1 + E. Any step
  // leaving the bracket falls back to bisection, so worst case matches the
  // plain bisection; typical case converges in < 10 evaluations.
  double rho = hi;
  for (int iteration = 0; iteration < 200; ++iteration) {
    const double log_e = log_erlang_b_plain(servers, rho, tally.steps);
    ++tally.evaluations;
    const double f = log_e - log_target;
    if (std::abs(f) < 1e-14) {
      break;
    }
    if (f < 0.0) {
      lo = rho;
    } else {
      hi = rho;
    }
    if (hi - lo < 1e-13 * (1.0 + hi)) {
      rho = 0.5 * (lo + hi);
      break;
    }
    const double derivative = n / rho - 1.0 + std::exp(log_e);
    double next = rho - f / derivative;
    if (!std::isfinite(next) || next <= lo || next >= hi) {
      next = 0.5 * (lo + hi);
    }
    rho = next;
  }

  flush(tally);
  return rho;
}

void ErlangKernel::publish() {
  Arena* own = registered_local_arena();
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t serial = serial_.load(std::memory_order_relaxed);
  const SnapshotPtr old_snapshot = load_snapshot();
  auto next = std::make_shared<Snapshot>();
  next->version = old_snapshot->version + 1;
  next->states = old_snapshot->states;  // shallow: prefixes are shared
  next->doubles = old_snapshot->doubles;

  for (const auto& arena_ptr : arenas_) {
    Arena& arena = *arena_ptr;
    if (arena.serial != serial) {
      continue;  // orphaned by clear(); excluded from new snapshots
    }
    std::lock_guard<std::mutex> arena_lock(arena.m);
    for (const auto& [key, state] : arena.states) {
      const std::size_t combined = state.combined();
      const auto it = next->states.find(key);
      const std::size_t have =
          it != next->states.end() ? it->second.prefix->size() : 0;
      if (combined <= have) {
        continue;
      }
      // The recurrence is deterministic, so every thread's extension of
      // this rho agrees bit-for-bit on shared indices: the union is simply
      // the longest prefix.
      auto merged = std::make_shared<Prefix>();
      merged->reserve(combined);
      if (state.base) {
        merged->insert(merged->end(), state.base->begin(), state.base->end());
      }
      merged->insert(merged->end(), state.ext.begin(), state.ext.end());
      next->doubles += combined - have;
      next->states[key] = SnapshotEntry{std::move(merged), next->version};
    }
    if (&arena == own) {
      // Only the owner may mutate (its lock-free read path allows no other
      // writer); foreign arenas self-clean on their owner's next query.
      arena.states.clear();
      arena.doubles = 0;
    }
  }

  // Bound the published tier: least-recently-merged states go first.
  while (next->states.size() > max_states_ ||
         (next->doubles > kPrefixBudget && !next->states.empty())) {
    auto victim = next->states.begin();
    for (auto it = next->states.begin(); it != next->states.end(); ++it) {
      if (it->second.touched < victim->second.touched) {
        victim = it;
      }
    }
    next->doubles -= victim->second.prefix->size();
    next->states.erase(victim);
  }

  snapshot_.store(std::move(next), std::memory_order_release);
  merges_.fetch_add(1, std::memory_order_relaxed);
  merges_metric_.add();
}

ErlangKernel::Stats ErlangKernel::stats() const {
  Stats stats;
  stats.evaluations = evaluations_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  stats.steps = steps_.load(std::memory_order_relaxed);
  stats.snapshot_hits = snapshot_hits_.load(std::memory_order_relaxed);
  stats.arena_extensions = arena_extensions_.load(std::memory_order_relaxed);
  stats.merges = merges_.load(std::memory_order_relaxed);
  return stats;
}

void ErlangKernel::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  // A new generation orphans every registered arena (threads re-register on
  // their next query); orphaned arenas are retained until destruction so a
  // concurrent query can never touch freed memory.
  serial_.store(g_kernel_serial.fetch_add(1, std::memory_order_relaxed),
                std::memory_order_release);
  snapshot_.store(std::make_shared<const Snapshot>(),
                  std::memory_order_release);
  evaluations_.store(0, std::memory_order_relaxed);
  cache_hits_.store(0, std::memory_order_relaxed);
  snapshot_hits_.store(0, std::memory_order_relaxed);
  steps_.store(0, std::memory_order_relaxed);
  arena_extensions_.store(0, std::memory_order_relaxed);
  merges_.store(0, std::memory_order_relaxed);
}

ErlangKernel& ErlangKernel::shared() {
  static ErlangKernel kernel;
  return kernel;
}

}  // namespace vmcons::queueing
