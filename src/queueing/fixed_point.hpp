// Erlang fixed-point (reduced-load) approximation for loss networks.
//
// The paper's model treats each resource as an independent Erlang-B system,
// which ignores that a request blocked on one resource never loads the
// others (and vice versa). The classical refinement — Kelly's reduced-load
// approximation — solves the coupled system by fixed point:
//
//     B_j = ErlangB(C_j, sum_i rho_ij * prod_{k != j, i demands k} (1-B_k))
//
// i.e. each resource sees every service's load thinned by the acceptance
// probability of the OTHER resources that service demands. Per-service
// end-to-end blocking is then L_i = 1 - prod_{j demanded} (1 - B_j).
//
// This gives the library three accuracy tiers for the same question:
// paper model (independent) < fixed point (reduced load) < simulation.
#pragma once

#include <cstdint>
#include <vector>

namespace vmcons::queueing {

/// One service class in the loss network: its arrival rate and its
/// per-resource service rates (0 = resource not demanded).
struct LossClass {
  double arrival_rate = 0.0;
  std::vector<double> service_rates;  ///< indexed by resource
};

struct FixedPointResult {
  std::vector<double> resource_blocking;  ///< B_j per resource
  std::vector<double> class_blocking;     ///< L_i per service class
  double overall_blocking = 0.0;          ///< lambda-weighted mean of L_i
  unsigned iterations = 0;
  bool converged = false;
};

/// Solves the reduced-load fixed point for `capacity` servers per resource.
/// All classes must agree on the resource count. Converges by damped
/// successive substitution (the map is a contraction for these systems).
FixedPointResult reduced_load_blocking(const std::vector<LossClass>& classes,
                                       std::uint64_t capacity,
                                       double tolerance = 1e-12,
                                       unsigned max_iterations = 10000);

/// Minimum capacity (servers per resource) such that the reduced-load
/// overall blocking meets `target_blocking`.
std::uint64_t reduced_load_capacity(const std::vector<LossClass>& classes,
                                    double target_blocking);

}  // namespace vmcons::queueing
