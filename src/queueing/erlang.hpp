// Erlang loss (B) and delay (C) formulas — Eq. (1)-(2) of the paper.
//
// The paper's utility analytic model is built entirely on the Erlang-B loss
// probability E_n(rho) of an M/M/n/n system and its inverse (the minimum n
// such that E_n(rho) <= B). We implement the numerically stable recurrence
//
//     E_0(rho) = 1,   E_n(rho) = rho * E_{n-1}(rho) / (n + rho * E_{n-1}(rho))
//
// which the paper's Fig. 4 algorithm also uses; it involves no factorials and
// is exact for offered loads up to ~1e7 erlangs.
#pragma once

#include <cstdint>

namespace vmcons::queueing {

/// Offered traffic (erlangs): rho = lambda / mu. Both must be positive.
double offered_load(double arrival_rate, double service_rate);

/// Erlang-B blocking probability E_n(rho) for n servers and offered load rho.
/// n = 0 returns 1 (every request blocked). Requires rho >= 0.
double erlang_b(std::uint64_t servers, double rho);

/// Minimum number of servers n such that E_n(rho) <= target_blocking.
/// This is exactly the iterative loop of the paper's Fig. 4.
/// Requires rho >= 0 and target_blocking in (0, 1].
std::uint64_t erlang_b_servers(double rho, double target_blocking);

/// Inverse in the load direction: the largest offered load rho such that
/// E_n(rho) <= target_blocking, via bisection. Useful for "how much traffic
/// can N consolidated servers carry" questions. Requires n >= 1.
double erlang_b_capacity(std::uint64_t servers, double target_blocking);

/// Erlang-C probability of waiting (M/M/n with infinite queue); requires the
/// stability condition rho < n.
double erlang_c(std::uint64_t servers, double rho);

/// Mean waiting time in queue for M/M/n (Erlang-C model), arrival rate
/// lambda, per-server service rate mu. Requires lambda < n*mu.
double erlang_c_mean_wait(std::uint64_t servers, double lambda, double mu);

/// Carried load: rho * (1 - E_n(rho)), the average number of busy servers.
double carried_load(std::uint64_t servers, double rho);

/// Average per-server utilization of the loss system: carried / n.
double loss_system_utilization(std::uint64_t servers, double rho);

}  // namespace vmcons::queueing
