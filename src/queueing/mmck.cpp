#include "queueing/mmck.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace vmcons::queueing {

MmckMetrics solve_mmck(std::uint64_t servers, std::uint64_t capacity,
                       double lambda, double mu) {
  VMCONS_REQUIRE(servers >= 1, "M/M/c/K needs at least one server");
  VMCONS_REQUIRE(capacity >= servers, "capacity must be >= servers");
  VMCONS_REQUIRE(lambda > 0.0 && mu > 0.0, "rates must be positive");

  const auto k = static_cast<std::size_t>(capacity);
  const double a = lambda / mu;

  // Build unnormalized weights w_n = prod birth/death ratios, renormalizing
  // on the fly so the largest stays at 1 (prevents overflow for big c).
  std::vector<double> weights(k + 1);
  weights[0] = 1.0;
  double peak = 1.0;
  for (std::size_t n = 1; n <= k; ++n) {
    const double in_service =
        static_cast<double>(std::min<std::uint64_t>(n, servers));
    weights[n] = weights[n - 1] * a / in_service;
    peak = std::max(peak, weights[n]);
  }
  double total = 0.0;
  for (auto& w : weights) {
    w /= peak;
    total += w;
  }

  MmckMetrics metrics;
  metrics.state_probabilities.resize(k + 1);
  for (std::size_t n = 0; n <= k; ++n) {
    metrics.state_probabilities[n] = weights[n] / total;
  }
  metrics.blocking = metrics.state_probabilities[k];

  double mean_in_system = 0.0;
  double mean_in_queue = 0.0;
  double busy_servers = 0.0;
  for (std::size_t n = 0; n <= k; ++n) {
    const double p = metrics.state_probabilities[n];
    const double nd = static_cast<double>(n);
    const double in_service =
        static_cast<double>(std::min<std::uint64_t>(n, servers));
    mean_in_system += nd * p;
    mean_in_queue += (nd - in_service) * p;
    busy_servers += in_service * p;
  }
  metrics.mean_in_system = mean_in_system;
  metrics.mean_in_queue = mean_in_queue;
  metrics.throughput = lambda * (1.0 - metrics.blocking);
  metrics.server_utilization = busy_servers / static_cast<double>(servers);
  // Little's law over accepted requests.
  metrics.mean_response_time = mean_in_system / metrics.throughput;
  metrics.mean_wait_time = mean_in_queue / metrics.throughput;
  return metrics;
}

}  // namespace vmcons::queueing
