// Staffing helpers beyond the paper's pure-loss model.
//
// The paper staffs with Erlang-B (no waiting room). Real front ends buffer
// a few requests; this module quantifies how much waiting room substitutes
// for servers — an extension study (bench/ablation_waiting_room) — and
// offers square-root safety staffing as a quick-estimate baseline.
#pragma once

#include <cstdint>

namespace vmcons::queueing {

/// Minimum servers c such that the M/M/c/(c+queue) blocking probability is
/// at most target_blocking, for offered load rho = lambda/mu.
/// queue = 0 reduces to erlang_b_servers.
std::uint64_t staffing_with_queue(double lambda, double mu,
                                  std::uint64_t queue, double target_blocking);

/// The square-root staffing rule: c = rho + beta * sqrt(rho), rounded up.
/// beta ~ normal quantile of the target grade of service; the classic
/// quick estimate the Erlang solve refines.
std::uint64_t square_root_staffing(double rho, double beta);

/// Servers *saved* by a waiting room: erlang_b_servers(rho, B) minus
/// staffing_with_queue(..., queue, B).
std::uint64_t servers_saved_by_queue(double lambda, double mu,
                                     std::uint64_t queue,
                                     double target_blocking);

}  // namespace vmcons::queueing
