#include "queueing/erlang.hpp"

#include <cmath>

#include "util/error.hpp"

namespace vmcons::queueing {

double offered_load(double arrival_rate, double service_rate) {
  VMCONS_REQUIRE(arrival_rate >= 0.0, "arrival rate must be >= 0");
  VMCONS_REQUIRE(service_rate > 0.0, "service rate must be > 0");
  return arrival_rate / service_rate;
}

double erlang_b(std::uint64_t servers, double rho) {
  VMCONS_REQUIRE(rho >= 0.0, "offered load must be >= 0");
  if (rho == 0.0) {
    return servers == 0 ? 1.0 : 0.0;
  }
  double blocking = 1.0;
  for (std::uint64_t n = 1; n <= servers; ++n) {
    blocking = rho * blocking / (static_cast<double>(n) + rho * blocking);
  }
  return blocking;
}

std::uint64_t erlang_b_servers(double rho, double target_blocking) {
  VMCONS_REQUIRE(rho >= 0.0, "offered load must be >= 0");
  VMCONS_REQUIRE(target_blocking > 0.0 && target_blocking <= 1.0,
                 "target blocking must be in (0, 1]");
  if (rho == 0.0) {
    return 0;
  }
  double blocking = 1.0;
  std::uint64_t n = 0;
  // E_n decreases strictly in n for fixed rho > 0 and tends to 0, so the
  // loop terminates; the bound n <= rho + 50*sqrt(rho) + 64 is a safety net
  // far beyond the square-root staffing rule.
  const auto limit = static_cast<std::uint64_t>(rho + 50.0 * std::sqrt(rho) + 64.0);
  while (blocking > target_blocking) {
    ++n;
    blocking = rho * blocking / (static_cast<double>(n) + rho * blocking);
    if (n > limit) {
      throw NumericError("erlang_b_servers failed to converge");
    }
  }
  return n;
}

double erlang_b_capacity(std::uint64_t servers, double target_blocking) {
  VMCONS_REQUIRE(servers >= 1, "capacity inverse needs at least one server");
  VMCONS_REQUIRE(target_blocking > 0.0 && target_blocking < 1.0,
                 "target blocking must be in (0, 1)");
  // E_n(rho) is strictly increasing in rho, so bisection applies. Bracket:
  // blocking at rho -> 0 is 0; grow hi geometrically until it blocks enough.
  double lo = 0.0;
  double hi = static_cast<double>(servers);
  while (erlang_b(servers, hi) < target_blocking) {
    hi *= 2.0;
    if (hi > 1e12) {
      throw NumericError("erlang_b_capacity failed to bracket");
    }
  }
  for (int iteration = 0; iteration < 200; ++iteration) {
    const double mid = 0.5 * (lo + hi);
    if (erlang_b(servers, mid) < target_blocking) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * (1.0 + hi)) {
      break;
    }
  }
  return 0.5 * (lo + hi);
}

double erlang_c(std::uint64_t servers, double rho) {
  VMCONS_REQUIRE(servers >= 1, "Erlang-C needs at least one server");
  VMCONS_REQUIRE(rho >= 0.0, "offered load must be >= 0");
  VMCONS_REQUIRE(rho < static_cast<double>(servers),
                 "Erlang-C requires rho < n (stability)");
  const double b = erlang_b(servers, rho);
  const double n = static_cast<double>(servers);
  return n * b / (n - rho * (1.0 - b));
}

double erlang_c_mean_wait(std::uint64_t servers, double lambda, double mu) {
  VMCONS_REQUIRE(mu > 0.0, "service rate must be > 0");
  const double rho = offered_load(lambda, mu);
  const double c = erlang_c(servers, rho);
  const double n = static_cast<double>(servers);
  return c / (n * mu - lambda);
}

double carried_load(std::uint64_t servers, double rho) {
  return rho * (1.0 - erlang_b(servers, rho));
}

double loss_system_utilization(std::uint64_t servers, double rho) {
  if (servers == 0) {
    return 0.0;
  }
  return carried_load(servers, rho) / static_cast<double>(servers);
}

}  // namespace vmcons::queueing
