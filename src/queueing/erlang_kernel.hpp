// Incremental, memoized Erlang-B kernel for parameter sweeps.
//
// The free functions in erlang.hpp restart the E_n(rho) recurrence from
// E_0 = 1 on every call, which is fine for one-off queries but wasteful on
// the planner's what-if grids: a sweep over target loss B at fixed workload
// evaluates the same rho at many staffing levels, and erlang_b_capacity
// bisects ~200 times at O(n) each. ErlangKernel removes both costs:
//
//  * per-rho prefix cache — the recurrence state E_0..E_k is kept per
//    distinct rho, so a query at n <= k is a lookup and a query at n > k
//    resumes the recursion at k instead of 0. erlang_b_servers(rho, B)
//    binary-searches the cached prefix (E_n is strictly decreasing in n)
//    before extending it, so sweeping B over a fixed workload costs one
//    recursion total, not one per point.
//  * Newton capacity inverse — erlang_b_capacity uses the closed-form
//    derivative dE/drho = E * (n/rho - 1 + E), converging in ~5-8
//    evaluations instead of ~200 bisection steps (a guarded bracket makes
//    it as robust as bisection).
//  * log-domain evaluation — log_erlang_b runs the recurrence on
//    log(1/E_n), which neither overflows nor underflows, for the
//    n >> rho regime where E_n itself drops below DBL_MIN.
//
// Concurrency model — two-tier, contention-free memoization:
//
//  * Snapshot tier. An immutable map rho -> prefix(E_0..E_k), published as
//    one atomically-swapped std::shared_ptr. Readers load the pointer and
//    binary-search/index the prefix with no lock; a query answered here
//    ("snapshot hit") involves zero synchronization beyond that one atomic
//    shared_ptr load.
//  * Arena tier. A query the snapshot cannot answer resumes the recurrence
//    in the calling thread's private extension arena: each worker owns a
//    per-rho {base prefix, private extension} pair and extends it without
//    seeing any other thread. The only lock an arena operation takes is the
//    arena's own (uncontended except while a merge reads it).
//  * Merge epochs. publish() folds the longest prefix per rho across every
//    arena into a fresh snapshot and swaps it in. Epochs end (a) when an
//    arena crosses a size watermark, (b) when a BatchEvaluator batch
//    completes, or (c) on an explicit publish() call. Because the
//    recurrence is deterministic with a fixed order of operations, a prefix
//    extended by any thread from any published base is bit-identical to
//    every other extension of the same rho — merging is a pure
//    longest-prefix union and never changes an answer.
//
// Results are bit-identical to the erlang.hpp free functions (same
// recurrence, same order of operations), so replacing one with the other —
// or changing the worker count — never perturbs a plan.
//
// clear() is safe to call concurrently with queries, but counters and
// cached prefixes touched by in-flight queries may survive it; call it
// quiescently when exact stats matter. Orphaned arenas are retained until
// the kernel is destroyed.
//
// Instrumentation: evaluations, recursion steps, cache hits, snapshot
// hits, arena extensions, and merges are reported both per-kernel
// (stats()) and to the process-wide metrics registry under the
// metrics::names::kErlang* canonical names.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "util/metrics.hpp"

namespace vmcons::queueing {

/// One E_n(rho) evaluation request for ErlangKernel::eval_many.
struct BlockingQuery {
  std::uint64_t servers = 0;
  double rho = 0.0;
};

/// One staffing (minimum-n) request for ErlangKernel::servers_for_many.
struct StaffingQuery {
  double rho = 0.0;
  double target_blocking = 0.0;
};

class ErlangKernel {
 public:
  struct Stats {
    std::uint64_t evaluations = 0;  ///< public queries answered
    std::uint64_t cache_hits = 0;   ///< answered from snapshot or arena
    std::uint64_t steps = 0;        ///< recurrence steps actually executed
    std::uint64_t snapshot_hits = 0;      ///< hits served lock-free
    std::uint64_t arena_extensions = 0;   ///< private recurrence resumptions
    std::uint64_t merges = 0;             ///< snapshots published
    double hit_rate() const noexcept {
      return evaluations > 0
                 ? static_cast<double>(cache_hits) /
                       static_cast<double>(evaluations)
                 : 0.0;
    }
  };

  /// `max_states` caps the number of distinct rho values whose recursion
  /// prefixes are retained in a published snapshot (least-recently-merged
  /// eviction beyond it; arenas are bounded by the merge watermark).
  explicit ErlangKernel(std::size_t max_states = 64);
  ~ErlangKernel();

  ErlangKernel(const ErlangKernel&) = delete;
  ErlangKernel& operator=(const ErlangKernel&) = delete;

  /// Erlang-B blocking E_n(rho); identical contract and bit-identical
  /// results to queueing::erlang_b.
  double erlang_b(std::uint64_t servers, double rho);

  /// log E_n(rho), evaluated wholly in the log domain: finite and accurate
  /// even where E_n underflows double (large n - rho). rho = 0 with
  /// servers >= 1 returns -infinity.
  double log_erlang_b(std::uint64_t servers, double rho);

  /// Minimum n with E_n(rho) <= target_blocking; identical contract and
  /// results to queueing::erlang_b_servers.
  std::uint64_t erlang_b_servers(double rho, double target_blocking);

  /// Largest rho with E_n(rho) <= target_blocking. Same contract as
  /// queueing::erlang_b_capacity; agrees with it to the bisection's own
  /// tolerance (~1e-12 relative) while costing far fewer evaluations.
  double erlang_b_capacity(std::uint64_t servers, double target_blocking);

  /// Batched erlang_b: out[i] = E_{queries[i].servers}(queries[i].rho), each
  /// bit-identical to the scalar call. The span is sorted by (rho, servers)
  /// and walked against one snapshot load, so every per-rho recursion prefix
  /// is visited once and only ever extended — a monotone, lock-free walk.
  void eval_many(std::span<const BlockingQuery> queries,
                 std::span<double> out);

  /// Batched erlang_b_servers: out[i] = min n with E_n <= target, processed
  /// sorted by (rho, descending target) against one snapshot load; same
  /// monotone-walk guarantee and bit-identical per-query results.
  void servers_for_many(std::span<const StaffingQuery> queries,
                        std::span<std::uint64_t> out);

  /// Ends the current merge epoch: folds the longest prefix per rho across
  /// every thread's arena into a new snapshot and publishes it atomically.
  /// The calling thread's arena is drained; other arenas self-clean on
  /// their owner's next query. Answers are unaffected (merged prefixes are
  /// bit-identical to the arena values they replace).
  void publish();

  /// Counters since construction (or the last clear()).
  Stats stats() const;

  /// Drops all published and arena state and zeroes the per-kernel
  /// counters. See the header comment for concurrent-use caveats.
  void clear();

  /// Process-wide kernel used by the default sweep path.
  static ErlangKernel& shared();

 private:
  using Prefix = std::vector<double>;  ///< prefix[k] = E_k(rho); [0] = 1
  using PrefixPtr = std::shared_ptr<const Prefix>;

  struct SnapshotEntry {
    PrefixPtr prefix;
    std::uint64_t touched = 0;  ///< merge version that last grew this rho
  };
  /// Immutable once published; replaced wholesale by publish().
  struct Snapshot {
    std::unordered_map<std::uint64_t, SnapshotEntry> states;  // key: rho bits
    std::uint64_t version = 0;
    std::size_t doubles = 0;  ///< sum of prefix sizes, for the budget
  };
  using SnapshotPtr = std::shared_ptr<const Snapshot>;

  struct Arena;  // private to erlang_kernel.cpp

  /// Per-walk counter deltas, flushed to the atomics once per public call
  /// instead of once per query.
  struct Tally {
    std::uint64_t evaluations = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t snapshot_hits = 0;
    std::uint64_t steps = 0;
    std::uint64_t arena_extensions = 0;
  };

  SnapshotPtr load_snapshot() const;
  /// The calling thread's arena for this kernel generation, registering it
  /// (under mutex_) on first use.
  Arena& local_arena();
  /// Registered arena or nullptr; never registers (safe under mutex_).
  Arena* registered_local_arena() const;
  static std::unordered_map<std::uint64_t, Arena*>& thread_arena_map();

  /// Single-query bodies shared by the scalar entry points and the sorted
  /// batch walks. Require rho > 0; lock only the local arena, on miss.
  double eval_one(const Snapshot& snapshot, std::uint64_t servers, double rho,
                  Tally& tally);
  std::uint64_t staff_one(const Snapshot& snapshot, double rho,
                          double target_blocking, Tally& tally);
  void flush(const Tally& tally);
  /// publish() iff the local arena crossed the merge watermark.
  void maybe_publish();

  std::atomic<SnapshotPtr> snapshot_;
  mutable std::mutex mutex_;  ///< arena registration, merges, clear()
  std::vector<std::unique_ptr<Arena>> arenas_;
  std::atomic<std::uint64_t> serial_;  ///< globally unique kernel generation
  std::size_t max_states_;

  std::atomic<std::uint64_t> evaluations_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> snapshot_hits_{0};
  std::atomic<std::uint64_t> steps_{0};
  std::atomic<std::uint64_t> arena_extensions_{0};
  std::atomic<std::uint64_t> merges_{0};

  // Process-wide mirrors of the per-kernel counters.
  metrics::Counter& evaluations_metric_;
  metrics::Counter& cache_hits_metric_;
  metrics::Counter& steps_metric_;
  metrics::Counter& snapshot_hits_metric_;
  metrics::Counter& arena_extensions_metric_;
  metrics::Counter& merges_metric_;
};

}  // namespace vmcons::queueing
