// Incremental, memoized Erlang-B kernel for parameter sweeps.
//
// The free functions in erlang.hpp restart the E_n(rho) recurrence from
// E_0 = 1 on every call, which is fine for one-off queries but wasteful on
// the planner's what-if grids: a sweep over target loss B at fixed workload
// evaluates the same rho at many staffing levels, and erlang_b_capacity
// bisects ~200 times at O(n) each. ErlangKernel removes both costs:
//
//  * per-rho prefix cache — the recurrence state E_0..E_k is kept per
//    distinct rho, so a query at n <= k is a lookup and a query at n > k
//    resumes the recursion at k instead of 0. erlang_b_servers(rho, B)
//    binary-searches the cached prefix (E_n is strictly decreasing in n)
//    before extending it, so sweeping B over a fixed workload costs one
//    recursion total, not one per point.
//  * Newton capacity inverse — erlang_b_capacity uses the closed-form
//    derivative dE/drho = E * (n/rho - 1 + E), converging in ~5-8
//    evaluations instead of ~200 bisection steps (a guarded bracket makes
//    it as robust as bisection).
//  * log-domain evaluation — log_erlang_b runs the recurrence on
//    log(1/E_n), which neither overflows nor underflows, for the
//    n >> rho regime where E_n itself drops below DBL_MIN.
//
// Thread safety: all public methods may be called concurrently; the cache
// is guarded by a mutex (critical sections are O(log) lookups plus any
// recursion extension). Results are bit-identical to the erlang.hpp free
// functions (same recurrence, same order of operations), so replacing one
// with the other never perturbs a plan.
//
// Instrumentation: evaluations, recursion steps, and cache hits are
// reported both per-kernel (stats()) and to the process-wide metrics
// registry ("erlang.evaluations", "erlang.cache_hits", "erlang.steps").
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "util/metrics.hpp"

namespace vmcons::queueing {

/// One E_n(rho) evaluation request for ErlangKernel::eval_many.
struct BlockingQuery {
  std::uint64_t servers = 0;
  double rho = 0.0;
};

/// One staffing (minimum-n) request for ErlangKernel::servers_for_many.
struct StaffingQuery {
  double rho = 0.0;
  double target_blocking = 0.0;
};

class ErlangKernel {
 public:
  struct Stats {
    std::uint64_t evaluations = 0;  ///< public queries answered
    std::uint64_t cache_hits = 0;   ///< answered from a cached prefix
    std::uint64_t steps = 0;        ///< recurrence steps actually executed
    double hit_rate() const noexcept {
      return evaluations > 0
                 ? static_cast<double>(cache_hits) /
                       static_cast<double>(evaluations)
                 : 0.0;
    }
  };

  /// `max_states` caps the number of distinct rho values whose recursion
  /// prefixes are retained (least-recently-used eviction beyond it).
  explicit ErlangKernel(std::size_t max_states = 64);

  /// Erlang-B blocking E_n(rho); identical contract and bit-identical
  /// results to queueing::erlang_b.
  double erlang_b(std::uint64_t servers, double rho);

  /// log E_n(rho), evaluated wholly in the log domain: finite and accurate
  /// even where E_n underflows double (large n - rho). rho = 0 with
  /// servers >= 1 returns -infinity.
  double log_erlang_b(std::uint64_t servers, double rho);

  /// Minimum n with E_n(rho) <= target_blocking; identical contract and
  /// results to queueing::erlang_b_servers.
  std::uint64_t erlang_b_servers(double rho, double target_blocking);

  /// Largest rho with E_n(rho) <= target_blocking. Same contract as
  /// queueing::erlang_b_capacity; agrees with it to the bisection's own
  /// tolerance (~1e-12 relative) while costing far fewer evaluations.
  double erlang_b_capacity(std::uint64_t servers, double target_blocking);

  /// Batched erlang_b: out[i] = E_{queries[i].servers}(queries[i].rho), each
  /// bit-identical to the scalar call. Queries are processed sorted by
  /// (rho, servers) under one lock acquisition, so every per-rho recursion
  /// prefix is visited once and only ever extended — a monotone cache walk
  /// instead of the thrash an arbitrary query order causes.
  void eval_many(std::span<const BlockingQuery> queries,
                 std::span<double> out);

  /// Batched erlang_b_servers: out[i] = min n with E_n <= target, processed
  /// sorted by (rho, descending target) under one lock; same monotone-walk
  /// guarantee and bit-identical per-query results.
  void servers_for_many(std::span<const StaffingQuery> queries,
                        std::span<std::uint64_t> out);

  /// Counters since construction (or the last clear()).
  Stats stats() const;

  /// Drops all cached state and zeroes the per-kernel counters.
  void clear();

  /// Process-wide kernel used by the default sweep path.
  static ErlangKernel& shared();

 private:
  struct State {
    std::vector<double> prefix;  ///< prefix[k] = E_k(rho); prefix[0] = 1
    std::uint64_t last_used = 0;
  };

  /// Returns the cache slot for rho, creating/evicting as needed.
  /// Requires rho > 0 and mutex_ held.
  State& state_for(double rho);
  /// Extends `state` so prefix covers index `servers`; mutex_ held.
  void extend(State& state, double rho, std::uint64_t servers);
  /// The locked bodies of erlang_b / erlang_b_servers, shared by the scalar
  /// entry points and the sorted batch walks. Require rho > 0, mutex_ held.
  double erlang_b_locked(std::uint64_t servers, double rho);
  std::uint64_t erlang_b_servers_locked(double rho, double target_blocking);

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, State> states_;  // key: bit pattern of rho
  std::size_t max_states_;
  std::size_t cached_doubles_ = 0;  ///< sum of prefix sizes, for the budget
  std::uint64_t ticket_ = 0;
  Stats stats_;
  // Process-wide mirrors of the per-kernel counters.
  metrics::Counter& evaluations_metric_;
  metrics::Counter& cache_hits_metric_;
  metrics::Counter& steps_metric_;
};

}  // namespace vmcons::queueing
