#include "queueing/fixed_point.hpp"

#include <cmath>

#include "queueing/erlang.hpp"
#include "util/error.hpp"

namespace vmcons::queueing {
namespace {

std::size_t validate(const std::vector<LossClass>& classes) {
  VMCONS_REQUIRE(!classes.empty(), "loss network needs at least one class");
  const std::size_t resources = classes.front().service_rates.size();
  VMCONS_REQUIRE(resources >= 1, "loss network needs at least one resource");
  bool any_demand = false;
  for (const auto& loss_class : classes) {
    VMCONS_REQUIRE(loss_class.service_rates.size() == resources,
                   "all classes must list the same resources");
    VMCONS_REQUIRE(loss_class.arrival_rate >= 0.0,
                   "arrival rates must be >= 0");
    for (const double rate : loss_class.service_rates) {
      VMCONS_REQUIRE(rate >= 0.0, "service rates must be >= 0");
      any_demand = any_demand || rate > 0.0;
    }
  }
  VMCONS_REQUIRE(any_demand, "no class demands any resource");
  return resources;
}

}  // namespace

FixedPointResult reduced_load_blocking(const std::vector<LossClass>& classes,
                                       std::uint64_t capacity,
                                       double tolerance,
                                       unsigned max_iterations) {
  const std::size_t resources = validate(classes);
  VMCONS_REQUIRE(capacity >= 1, "capacity must be >= 1");
  VMCONS_REQUIRE(tolerance > 0.0, "tolerance must be positive");

  FixedPointResult result;
  result.resource_blocking.assign(resources, 0.0);

  // Damped successive substitution: B <- (1-w) B + w T(B).
  const double damping = 0.5;
  for (result.iterations = 0; result.iterations < max_iterations;
       ++result.iterations) {
    double worst_delta = 0.0;
    std::vector<double> next(resources, 0.0);
    for (std::size_t j = 0; j < resources; ++j) {
      double reduced_load = 0.0;
      for (const auto& loss_class : classes) {
        const double mu = loss_class.service_rates[j];
        if (mu <= 0.0 || loss_class.arrival_rate <= 0.0) {
          continue;
        }
        double thinning = 1.0;
        for (std::size_t k = 0; k < resources; ++k) {
          if (k != j && loss_class.service_rates[k] > 0.0) {
            thinning *= 1.0 - result.resource_blocking[k];
          }
        }
        reduced_load += loss_class.arrival_rate / mu * thinning;
      }
      next[j] = erlang_b(capacity, reduced_load);
    }
    for (std::size_t j = 0; j < resources; ++j) {
      const double updated = (1.0 - damping) * result.resource_blocking[j] +
                             damping * next[j];
      worst_delta =
          std::max(worst_delta, std::abs(updated - result.resource_blocking[j]));
      result.resource_blocking[j] = updated;
    }
    if (worst_delta < tolerance) {
      result.converged = true;
      break;
    }
  }

  double lost = 0.0;
  double offered = 0.0;
  for (const auto& loss_class : classes) {
    double acceptance = 1.0;
    for (std::size_t j = 0; j < resources; ++j) {
      if (loss_class.service_rates[j] > 0.0) {
        acceptance *= 1.0 - result.resource_blocking[j];
      }
    }
    result.class_blocking.push_back(1.0 - acceptance);
    lost += loss_class.arrival_rate * (1.0 - acceptance);
    offered += loss_class.arrival_rate;
  }
  result.overall_blocking = offered > 0.0 ? lost / offered : 0.0;
  return result;
}

std::uint64_t reduced_load_capacity(const std::vector<LossClass>& classes,
                                    double target_blocking) {
  validate(classes);
  VMCONS_REQUIRE(target_blocking > 0.0 && target_blocking < 1.0,
                 "target blocking must be in (0, 1)");
  // Blocking decreases in capacity; linear scan with a generous bound.
  double worst_rho = 0.0;
  for (std::size_t j = 0; j < classes.front().service_rates.size(); ++j) {
    double rho = 0.0;
    for (const auto& loss_class : classes) {
      if (loss_class.service_rates[j] > 0.0) {
        rho += loss_class.arrival_rate / loss_class.service_rates[j];
      }
    }
    worst_rho = std::max(worst_rho, rho);
  }
  const auto limit = static_cast<std::uint64_t>(
      worst_rho + 50.0 * std::sqrt(worst_rho) + 64.0);
  for (std::uint64_t capacity = 1; capacity <= limit; ++capacity) {
    if (reduced_load_blocking(classes, capacity).overall_blocking <=
        target_blocking) {
      return capacity;
    }
  }
  throw NumericError("reduced_load_capacity failed to converge");
}

}  // namespace vmcons::queueing
