#include "queueing/staffing.hpp"

#include <cmath>

#include "queueing/erlang.hpp"
#include "queueing/mmck.hpp"
#include "util/error.hpp"
#include "util/fault_inject.hpp"

namespace vmcons::queueing {

std::uint64_t staffing_with_queue(double lambda, double mu,
                                  std::uint64_t queue,
                                  double target_blocking) {
  VMCONS_REQUIRE(lambda > 0.0 && mu > 0.0, "rates must be positive");
  VMCONS_REQUIRE(target_blocking > 0.0 && target_blocking <= 1.0,
                 "target blocking must be in (0, 1]");
  const double rho = lambda / mu;
  // Fault index derives from the query's own bit pattern so an injected
  // failure lands on the same staffing question regardless of which thread
  // (or batch shard) asks it.
  if (util::FaultInjector::enabled()) {
    util::FaultInjector::global().check(
        util::fault_sites::kStaffingInverse,
        util::fault_index(rho, target_blocking, queue));
  }
  // The Erlang-B staffing is an upper bound (queue >= 0 only helps), so
  // scan downward from it; blocking of M/M/c/c+q is monotone in c.
  std::uint64_t c = erlang_b_servers(rho, target_blocking);
  if (c == 0) {
    return 0;
  }
  while (c > 1 &&
         solve_mmck(c - 1, c - 1 + queue, lambda, mu).blocking <=
             target_blocking) {
    --c;
  }
  // c = 1 may still satisfy the target (the loop stops at 1).
  if (c == 1 &&
      solve_mmck(1, 1 + queue, lambda, mu).blocking > target_blocking) {
    // Should be impossible: c came from a satisfying staffing and we only
    // lowered it while satisfied.
    throw NumericError("staffing_with_queue lost its invariant");
  }
  return c;
}

std::uint64_t square_root_staffing(double rho, double beta) {
  VMCONS_REQUIRE(rho >= 0.0, "offered load must be >= 0");
  VMCONS_REQUIRE(beta >= 0.0, "safety factor must be >= 0");
  return static_cast<std::uint64_t>(std::ceil(rho + beta * std::sqrt(rho)));
}

std::uint64_t servers_saved_by_queue(double lambda, double mu,
                                     std::uint64_t queue,
                                     double target_blocking) {
  const std::uint64_t loss_only =
      erlang_b_servers(lambda / mu, target_blocking);
  const std::uint64_t with_queue =
      staffing_with_queue(lambda, mu, queue, target_blocking);
  return loss_only - with_queue;
}

}  // namespace vmcons::queueing
