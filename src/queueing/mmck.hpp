// M/M/c/K steady-state solver.
//
// The paper's model is the pure-loss special case K = c (Erlang-B). The
// full M/M/c/K solver generalizes it to finite waiting rooms, which we use
// (a) as an extension study — how much waiting room buys back lost requests
// on consolidated servers — and (b) to cross-check the simulator beyond the
// loss-only regime.
#pragma once

#include <cstdint>
#include <vector>

namespace vmcons::queueing {

struct MmckMetrics {
  std::vector<double> state_probabilities;  ///< p_0 .. p_K
  double blocking = 0.0;                    ///< p_K (loss by request, PASTA)
  double mean_in_system = 0.0;              ///< L
  double mean_in_queue = 0.0;               ///< Lq
  double mean_response_time = 0.0;          ///< W  (accepted requests)
  double mean_wait_time = 0.0;              ///< Wq (accepted requests)
  double throughput = 0.0;                  ///< lambda * (1 - p_K)
  double server_utilization = 0.0;          ///< carried / c
};

/// Solves the M/M/c/K birth-death chain exactly.
///   servers  c >= 1
///   capacity K >= c (total places, queue + service)
///   lambda   arrival rate > 0
///   mu       per-server service rate > 0
/// Probabilities are computed with a running normalization to avoid overflow
/// for large c.
MmckMetrics solve_mmck(std::uint64_t servers, std::uint64_t capacity,
                       double lambda, double mu);

/// Convenience: the pure loss system M/M/c/c.
inline MmckMetrics solve_mmcc(std::uint64_t servers, double lambda, double mu) {
  return solve_mmck(servers, servers, lambda, mu);
}

}  // namespace vmcons::queueing
