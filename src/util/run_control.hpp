// Cooperative run control for long-running batch/sweep work.
//
// A production planner host needs to bound and abort work it launched: a
// dashboard cancels a superseded what-if sweep, a request handler gives a
// batch a wall-clock budget, an operator kills a runaway grid. The library
// is cooperative, not preemptive: hot loops (parallel_for chunks,
// BatchEvaluator shards, admission bisections) poll a RunControl between
// units of work and stop dispatching new units once a stop is requested, so
// cancellation latency is bounded by one unit (one chunk, one shard, one
// bisection step) and no thread is ever killed mid-update.
//
//   * CancelToken — a shared atomic flag. Copies share state, so the caller
//     keeps one token, hands copies to the options structs, and flips it
//     from any thread. Checking is one acquire load.
//   * Deadline — an absolute steady_clock expiry. Default-constructed it is
//     unset and never expires (and costs no clock read to check).
//   * RunControl — the pair, embedded in BatchOptions / SweepOptions /
//     ValidationOptions. stop_reason() distinguishes cancellation from
//     deadline expiry so callers can report batch.cancelled vs
//     batch.deadline_exceeded.
//
// Stopping is advisory for result correctness: work completed before the
// stop is bit-identical to the same work in an uninterrupted run.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <string>

#include "util/error.hpp"

namespace vmcons {

/// Shared, cooperative cancellation flag. Copies alias one flag; cancel()
/// is sticky (there is no un-cancel — make a new token for the next run).
class CancelToken {
 public:
  CancelToken() : state_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Requests cancellation; visible to every copy of this token. Safe to
  /// call from any thread, any number of times.
  void cancel() const noexcept { state_->store(true, std::memory_order_release); }

  /// True once any copy has been cancelled.
  bool cancelled() const noexcept {
    return state_->load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

/// Absolute wall-clock budget on the monotonic steady clock. Unset (the
/// default) never expires and never reads the clock.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;  ///< unset: never expires

  /// Deadline at an absolute steady-clock instant.
  static Deadline at(Clock::time_point when) {
    Deadline deadline;
    deadline.when_ = when;
    return deadline;
  }

  /// Deadline `budget` from now.
  static Deadline after(Clock::duration budget) {
    return at(Clock::now() + budget);
  }

  bool is_set() const noexcept { return when_.has_value(); }

  bool expired() const noexcept {
    return when_.has_value() && Clock::now() >= *when_;
  }

  std::optional<Clock::time_point> when() const noexcept { return when_; }

  /// Time left before expiry (clamped at zero); nullopt when unset.
  std::optional<Clock::duration> remaining() const noexcept {
    if (!when_.has_value()) {
      return std::nullopt;
    }
    const auto now = Clock::now();
    return now >= *when_ ? Clock::duration::zero() : *when_ - now;
  }

 private:
  std::optional<Clock::time_point> when_;
};

/// Why a RunControl asked the work to stop.
enum class StopReason { kNone, kCancelled, kDeadlineExceeded };

/// Cancellation + deadline, composed. Held by value in the options structs;
/// the embedded CancelToken still shares state with the caller's copy.
struct RunControl {
  CancelToken token;
  Deadline deadline;

  /// Cancellation outranks deadline expiry when both hold (an explicit stop
  /// is the stronger signal).
  StopReason stop_reason() const noexcept {
    if (token.cancelled()) {
      return StopReason::kCancelled;
    }
    if (deadline.expired()) {
      return StopReason::kDeadlineExceeded;
    }
    return StopReason::kNone;
  }

  bool stop_requested() const noexcept {
    return stop_reason() != StopReason::kNone;
  }

  /// Throws CancelledError or DeadlineExceededError (with the matching
  /// ErrorCode) when a stop has been requested; `context` names the
  /// interrupted operation in the message.
  void raise_if_stopped(const std::string& context) const {
    switch (stop_reason()) {
      case StopReason::kNone:
        return;
      case StopReason::kCancelled:
        throw CancelledError(context + ": cancelled by caller");
      case StopReason::kDeadlineExceeded:
        throw DeadlineExceededError(context + ": deadline exceeded");
    }
  }
};

}  // namespace vmcons
