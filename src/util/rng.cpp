#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace vmcons {
namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed, std::uint64_t stream) noexcept {
  // Mix the stream id into the seed chain so that (seed, 0) and (seed, 1)
  // produce unrelated state vectors.
  std::uint64_t chain = seed ^ (stream * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL);
  for (auto& word : state_) {
    word = splitmix64(chain);
  }
  // xoshiro must not start at the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Lemire-style rejection: unbiased and branch-cheap for n << 2^64.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) {
      return r % n;
    }
  }
}

double Rng::exponential(double rate) noexcept {
  // -log(1 - U) with U in [0,1) never evaluates log(0).
  return -std::log1p(-uniform()) / rate;
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) {
    return 0;
  }
  if (mean < 30.0) {
    // Inversion by sequential search.
    const double l = std::exp(-mean);
    double p = 1.0;
    std::uint64_t k = 0;
    do {
      ++k;
      p *= uniform();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation with continuity correction is adequate for the
  // arrival-count use cases in this library (mean >= 30), and keeps the
  // generator exactly reproducible.
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::gamma(double shape, double scale) noexcept {
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia-Tsang section 6).
    const double u = uniform();
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) {
      return d * v * scale;
    }
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::uint64_t Rng::zipf(std::uint64_t n, double s) noexcept {
  if (n <= 1) {
    return 0;
  }
  if (s <= 0.0) {
    return uniform_index(n);
  }
  // Rejection-inversion (Hormann) over the continuous envelope.
  const double nd = static_cast<double>(n);
  auto h = [s](double x) {
    if (std::abs(s - 1.0) < 1e-12) {
      return std::log(x);
    }
    return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
  };
  auto h_inv = [s](double y) {
    if (std::abs(s - 1.0) < 1e-12) {
      return std::exp(y);
    }
    return std::pow(1.0 + y * (1.0 - s), 1.0 / (1.0 - s));
  };
  const double h_x1 = h(1.5) - std::pow(1.0, -s);
  const double h_n = h(nd + 0.5);
  for (;;) {
    const double u = h_x1 + uniform() * (h_n - h_x1);
    const double x = h_inv(u);
    const std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    const std::uint64_t clamped = k < 1 ? 1 : (k > n ? n : k);
    const double kd = static_cast<double>(clamped);
    if (u >= h(kd + 0.5) - std::pow(kd, -s)) {
      return clamped - 1;
    }
  }
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (const double w : weights) {
    total += w > 0.0 ? w : 0.0;
  }
  if (total <= 0.0) {
    return 0;
  }
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) {
      return i;
    }
    target -= w;
  }
  return weights.size() - 1;
}

}  // namespace vmcons
