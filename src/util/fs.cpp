#include "util/fs.hpp"

#include <array>
#include <cstring>
#include <thread>
#include <unordered_map>
#include <utility>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/backoff.hpp"
#include "util/metrics.hpp"

namespace vmcons::util::fs {
namespace {

constexpr std::array<std::string_view, kSiteCount> kKnownSites = {
    sites::kStoreOpen,      sites::kStoreShard,  sites::kStoreFinish,
    sites::kStoreRead,      sites::kManifestOpen, sites::kManifestAppend,
    sites::kLock,           sites::kClaim,       sites::kResultCommit,
    sites::kMetricsCommit,  sites::kRead,
};

std::size_t site_index(std::string_view site) noexcept {
  for (std::size_t i = 0; i < kKnownSites.size(); ++i) {
    if (kKnownSites[i] == site) {
      return i;
    }
  }
  return kKnownSites.size();
}

/// FNV-1a over the site name; stable across runs and platforms (same
/// construction as util::FaultInjector's).
std::uint64_t site_hash(std::string_view site) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform [0, 1) draw, pure in (seed, site, op): fs fault runs replay
/// bit-identically as long as the op sequence is serial per site.
double draw(std::uint64_t seed, std::uint64_t site,
            std::uint64_t op) noexcept {
  const std::uint64_t h = mix64(seed ^ mix64(site ^ mix64(op ^ 0xF5)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Transient-EIO retry budget for data reads/writes. Three attempts with
/// millisecond backoff ride out the spurious EIO a loaded NFS server
/// returns, without stalling long on a genuinely failing disk.
constexpr int kEioRetries = 3;

Backoff eio_backoff(std::string_view site) {
  Backoff::Options options;
  options.initial = std::chrono::microseconds(1000);
  options.max = std::chrono::microseconds(8000);
  return Backoff(options,
                 FsFaultInjector::global().seed() ^ site_hash(site));
}

void count_eio_retry() {
  metrics::registry().counter(metrics::names::kFsEioRetries).add();
}

FsFaultInjector::FaultPlan plan_op(std::string_view site) {
  if (!FsFaultInjector::enabled()) {
    return {};
  }
  return FsFaultInjector::global().on_op(site);
}

void maybe_crash_after(const FsFaultInjector::FaultPlan& plan,
                       std::string_view site) {
  if (plan.crash_after) {
    FsFaultInjector::global().throw_crash(site, plan.op);
  }
}

}  // namespace

std::string Status::message() const {
  return err == 0 ? std::string("ok") : std::string(std::strerror(err));
}

// --- File -----------------------------------------------------------------

File::File(File&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

File& File::operator=(File&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

File::~File() { close(); }

Status File::close() noexcept {
  if (fd_ < 0) {
    return {};
  }
  const int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0 && errno != EINTR) {
    // POSIX leaves the fd state after EINTR unspecified; retrying risks
    // closing a recycled descriptor, so EINTR counts as closed.
    return {errno, 0};
  }
  return {};
}

void File::adopt(int fd, std::string path) noexcept {
  close();
  fd_ = fd;
  path_ = std::move(path);
}

// --- open/create wrappers -------------------------------------------------

namespace {

Status open_with_flags(const std::string& path, int flags,
                       std::string_view site, File& out) {
  const FsFaultInjector::FaultPlan plan = plan_op(site);
  if (plan.fail) {
    return {plan.err, 0};
  }
  int fd = -1;
  do {
    fd = ::open(path.c_str(), flags, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return {errno, 0};
  }
  out.adopt(fd, path);
  maybe_crash_after(plan, site);
  return {};
}

}  // namespace

Status create_truncate(const std::string& path, std::string_view site,
                       File& out) {
  return open_with_flags(path, O_WRONLY | O_CREAT | O_TRUNC, site, out);
}

Status open_append(const std::string& path, std::string_view site,
                   File& out) {
  return open_with_flags(path, O_WRONLY | O_APPEND, site, out);
}

Status open_read(const std::string& path, std::string_view site, File& out) {
  return open_with_flags(path, O_RDONLY, site, out);
}

Status create_exclusive_file(const std::string& path,
                             std::string_view contents,
                             std::string_view site) {
  const FsFaultInjector::FaultPlan plan = plan_op(site);
  if (plan.fail) {
    return {plan.err, 0};
  }
  int fd = -1;
  do {
    fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return {errno, 0};  // EEXIST: lost the race, caller decides
  }
  File file;
  file.adopt(fd, path);
  maybe_crash_after(plan, site);
  const Status written = write_all(file, contents.data(), contents.size(),
                                   site);
  if (!written.ok()) {
    file.close();
    ::unlink(path.c_str());
    return written;
  }
  return file.close();
}

// --- data wrappers --------------------------------------------------------

Status write_all(File& file, const void* data, std::size_t n,
                 std::string_view site) {
  const char* p = static_cast<const char*>(data);
  std::size_t done = 0;
  int eio_left = kEioRetries;
  Backoff backoff = eio_backoff(site);
  while (done < n) {
    const FsFaultInjector::FaultPlan plan = plan_op(site);
    if (plan.fail) {
      if (plan.short_write && n - done > 1) {
        // Torn write: land a real partial prefix before failing, so the
        // file holds exactly the bytes a power cut mid-write would leave.
        const std::size_t partial = (n - done) / 2;
        std::size_t landed = 0;
        while (landed < partial) {
          const ::ssize_t w = ::write(file.fd(), p + done + landed,
                                      partial - landed);
          if (w <= 0) {
            break;  // the injected error below already covers this op
          }
          landed += static_cast<std::size_t>(w);
        }
        done += landed;
      }
      if (plan.err == EIO && eio_left-- > 0) {
        count_eio_retry();
        std::this_thread::sleep_for(backoff.next());
        continue;
      }
      return {plan.err, done};
    }
    const ::ssize_t w = ::write(file.fd(), p + done, n - done);
    if (w < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EIO && eio_left-- > 0) {
        count_eio_retry();
        std::this_thread::sleep_for(backoff.next());
        continue;
      }
      return {errno, done};
    }
    done += static_cast<std::size_t>(w);
    maybe_crash_after(plan, site);
  }
  metrics::registry().counter(metrics::names::kFsBytesWritten).add(n);
  return {0, done};
}

Status pread_all(const File& file, void* data, std::size_t n,
                 std::uint64_t offset, std::string_view site) {
  char* p = static_cast<char*>(data);
  std::size_t done = 0;
  int eio_left = kEioRetries;
  Backoff backoff = eio_backoff(site);
  while (done < n) {
    const FsFaultInjector::FaultPlan plan = plan_op(site);
    if (plan.fail) {
      if (plan.err == EIO && eio_left-- > 0) {
        count_eio_retry();
        std::this_thread::sleep_for(backoff.next());
        continue;
      }
      return {plan.err, done};
    }
    const ::ssize_t r = ::pread(file.fd(), p + done, n - done,
                                static_cast<::off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EIO && eio_left-- > 0) {
        count_eio_retry();
        std::this_thread::sleep_for(backoff.next());
        continue;
      }
      return {errno, done};
    }
    if (r == 0) {
      return {ENODATA, done};  // EOF before the requested range ended
    }
    done += static_cast<std::size_t>(r);
    maybe_crash_after(plan, site);
  }
  return {0, done};
}

Status fsync_file(const File& file, std::string_view site) {
  const FsFaultInjector::FaultPlan plan = plan_op(site);
  if (plan.fail) {
    return {plan.err, 0};
  }
  int rc = 0;
  do {
    rc = ::fsync(file.fd());
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return {errno, 0};
  }
  metrics::registry().counter(metrics::names::kFsFsyncs).add();
  maybe_crash_after(plan, site);
  return {};
}

Status fsync_parent_dir(const std::string& path, std::string_view site) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? std::string(".") : path.substr(0, slash);
  const FsFaultInjector::FaultPlan plan = plan_op(site);
  if (plan.fail) {
    return {plan.err, 0};
  }
  int fd = -1;
  do {
    fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY | O_DIRECTORY);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return {errno, 0};
  }
  int rc = 0;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  const int fsync_errno = rc != 0 ? errno : 0;
  ::close(fd);
  if (fsync_errno != 0) {
    return {fsync_errno, 0};
  }
  metrics::registry().counter(metrics::names::kFsFsyncs).add();
  maybe_crash_after(plan, site);
  return {};
}

Status rename_file(const std::string& from, const std::string& to,
                   std::string_view site) {
  const FsFaultInjector::FaultPlan plan = plan_op(site);
  if (plan.fail) {
    return {plan.err, 0};
  }
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return {errno, 0};
  }
  maybe_crash_after(plan, site);
  return {};
}

Status unlink_file(const std::string& path, std::string_view site) {
  const FsFaultInjector::FaultPlan plan = plan_op(site);
  if (plan.fail) {
    return {plan.err, 0};
  }
  if (::unlink(path.c_str()) != 0) {
    return {errno, 0};
  }
  maybe_crash_after(plan, site);
  return {};
}

Status truncate_file(const std::string& path, std::uint64_t bytes,
                     std::string_view site) {
  const FsFaultInjector::FaultPlan plan = plan_op(site);
  if (plan.fail) {
    return {plan.err, 0};
  }
  int rc = 0;
  do {
    rc = ::truncate(path.c_str(), static_cast<::off_t>(bytes));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return {errno, 0};
  }
  maybe_crash_after(plan, site);
  return {};
}

Status touch_file(const std::string& path, std::string_view site) {
  const FsFaultInjector::FaultPlan plan = plan_op(site);
  if (plan.fail) {
    return {plan.err, 0};
  }
  if (::utimensat(AT_FDCWD, path.c_str(), nullptr, 0) != 0) {
    return {errno, 0};
  }
  maybe_crash_after(plan, site);
  return {};
}

Status read_file(const std::string& path, std::string& out,
                 std::string_view site) {
  out.clear();
  File file;
  const Status opened = open_read(path, site, file);
  if (!opened.ok()) {
    return opened;  // ENOENT: caller decides whether missing is an error
  }
  char buffer[1 << 16];
  std::size_t total = 0;
  int eio_left = kEioRetries;
  Backoff backoff = eio_backoff(site);
  for (;;) {
    const FsFaultInjector::FaultPlan plan = plan_op(site);
    if (plan.fail) {
      if (plan.err == EIO && eio_left-- > 0) {
        count_eio_retry();
        std::this_thread::sleep_for(backoff.next());
        continue;
      }
      return {plan.err, total};
    }
    const ::ssize_t r = ::read(file.fd(), buffer, sizeof buffer);
    if (r < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EIO && eio_left-- > 0) {
        count_eio_retry();
        std::this_thread::sleep_for(backoff.next());
        continue;
      }
      return {errno, total};
    }
    if (r == 0) {
      maybe_crash_after(plan, site);
      return {0, total};
    }
    out.append(buffer, static_cast<std::size_t>(r));
    total += static_cast<std::size_t>(r);
    maybe_crash_after(plan, site);
  }
}

Status commit_file(const std::string& path, std::string_view contents,
                   const std::string& tag, std::string_view site) {
  const std::string tmp = path + ".tmp." + tag;
  File file;
  Status status = create_truncate(tmp, site, file);
  if (!status.ok()) {
    return status;
  }
  status = write_all(file, contents.data(), contents.size(), site);
  if (status.ok()) {
    status = fsync_file(file, site);
  }
  if (status.ok()) {
    status = file.close();
  }
  if (!status.ok()) {
    file.close();
    ::unlink(tmp.c_str());
    return status;
  }
  status = rename_file(tmp, path, site);
  if (!status.ok()) {
    ::unlink(tmp.c_str());
    return status;
  }
  // The rename made the commit *visible*; this fsync makes it *durable*
  // (without it, a power cut can resurrect the old directory entry).
  status = fsync_parent_dir(path, site);
  if (!status.ok()) {
    return status;
  }
  metrics::registry().counter(metrics::names::kFsCommits).add();
  return {};
}

// --- FsFaultInjector ------------------------------------------------------

/// Immutable arming snapshot, swapped atomically so on_op never locks.
struct FsFaultInjector::Config {
  std::uint64_t seed = 2009;
  std::unordered_map<std::uint64_t, SiteConfig> sites;  // key: site_hash
};

std::atomic<bool> FsFaultInjector::g_enabled{false};

FsFaultInjector::FsFaultInjector() {
  config_.store(std::make_shared<const Config>());
}

FsFaultInjector::~FsFaultInjector() = default;

std::shared_ptr<const FsFaultInjector::Config> FsFaultInjector::load() const {
  return config_.load(std::memory_order_acquire);
}

void FsFaultInjector::publish_enabled() const {
  if (this == &global()) {
    g_enabled.store(!load()->sites.empty(), std::memory_order_relaxed);
  }
}

void FsFaultInjector::arm(std::string_view site, SiteConfig config) {
  VMCONS_REQUIRE(site_index(site) < kKnownSites.size(),
                 "unknown fs fault site '" + std::string(site) +
                     "' (see FsFaultInjector::known_sites())");
  VMCONS_REQUIRE(config.error_rate >= 0.0 && config.error_rate <= 1.0,
                 "fs fault error_rate must be in [0, 1]");
  VMCONS_REQUIRE(config.error_errno > 0,
                 "fs fault error_errno must be a positive errno");
  auto next = std::make_shared<Config>(*load());
  next->sites[site_hash(site)] = config;
  config_.store(std::shared_ptr<const Config>(std::move(next)),
                std::memory_order_release);
  publish_enabled();
}

void FsFaultInjector::disarm_all() {
  auto next = std::make_shared<Config>();
  next->seed = load()->seed;
  config_.store(std::shared_ptr<const Config>(std::move(next)),
                std::memory_order_release);
  publish_enabled();
}

void FsFaultInjector::set_seed(std::uint64_t seed) {
  auto next = std::make_shared<Config>(*load());
  next->seed = seed;
  config_.store(std::shared_ptr<const Config>(std::move(next)),
                std::memory_order_release);
}

std::uint64_t FsFaultInjector::seed() const { return load()->seed; }

FsFaultInjector::FaultPlan FsFaultInjector::on_op(std::string_view site) {
  const auto config = load();
  if (config->sites.empty()) {
    return {};
  }
  const std::uint64_t hash = site_hash(site);
  const auto it = config->sites.find(hash);
  if (it == config->sites.end()) {
    return {};
  }
  const std::size_t index = site_index(site);
  VMCONS_ASSERT(index < kKnownSites.size());
  const std::uint64_t op =
      ops_[index].fetch_add(1, std::memory_order_relaxed) + 1;
  const SiteConfig& armed = it->second;

  FaultPlan plan;
  plan.op = op;
  if (armed.crash_at_op != 0 && op == armed.crash_at_op) {
    if (armed.crash_after) {
      plan.crash_after = true;
    } else {
      throw_crash(site, op);
    }
  }
  const bool error_hit =
      (armed.error_at_op != 0 && op == armed.error_at_op) ||
      (armed.error_rate > 0.0 &&
       draw(config->seed, hash, op) < armed.error_rate);
  if (error_hit) {
    plan.fail = true;
    plan.err = armed.error_errno;
    plan.short_write = armed.short_write;
  }
  return plan;
}

void FsFaultInjector::throw_crash(std::string_view site,
                                  std::uint64_t op) const {
  throw CrashInjectedError("injected crash at fs site '" + std::string(site) +
                           "', op " + std::to_string(op) + " (seed " +
                           std::to_string(seed()) + ")");
}

std::uint64_t FsFaultInjector::ops_at(std::string_view site) const {
  const std::size_t index = site_index(site);
  VMCONS_REQUIRE(index < kKnownSites.size(),
                 "unknown fs fault site '" + std::string(site) + "'");
  return ops_[index].load(std::memory_order_relaxed);
}

void FsFaultInjector::reset_ops() {
  for (auto& counter : ops_) {
    counter.store(0, std::memory_order_relaxed);
  }
}

std::span<const std::string_view> FsFaultInjector::known_sites() noexcept {
  return kKnownSites;
}

FsFaultInjector& FsFaultInjector::global() {
  static FsFaultInjector injector;
  return injector;
}

ScopedFsFaults::ScopedFsFaults()
    : saved_seed_(FsFaultInjector::global().seed()) {}

ScopedFsFaults::~ScopedFsFaults() {
  FsFaultInjector& injector = FsFaultInjector::global();
  injector.disarm_all();
  injector.set_seed(saved_seed_);
  injector.reset_ops();
}

}  // namespace vmcons::util::fs
