// Lightweight counter/timer registry for planner and simulator telemetry.
//
// The planner's value proposition is cheap offline what-if analysis, so the
// library instruments its own hot paths: Erlang evaluations, kernel cache
// hits, sweep wall-time, events executed. Counters are monotonic relaxed
// atomics (an increment is one uncontended atomic add); registration is
// mutex-guarded and names are stable for the registry's lifetime, so a
// Counter& obtained once can be bumped forever without further lookups.
//
// This is telemetry, not program state: values only ever accumulate, and no
// control flow depends on them, which is why a process-wide registry()
// instance is acceptable under the no-global-mutable-state rule.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace vmcons::metrics {

// Canonical names of the batch-evaluation and Erlang-kernel metrics, shared
// by the instrumented code, its tests, and anything parsing print_metrics
// output. Kept here (not in core/queueing) so a typo'd name is a compile
// error, not a silently separate counter.
namespace names {
inline constexpr const char* kBatchEvaluations = "batch.evaluations";
inline constexpr const char* kBatchScenarios = "batch.scenarios";
inline constexpr const char* kBatchShards = "batch.shards";
inline constexpr const char* kBatchKernelHits = "batch.kernel_hits";
inline constexpr const char* kBatchKernelMisses = "batch.kernel_misses";
inline constexpr const char* kBatchWall = "batch.wall";
/// Timer around the end-of-batch ErlangKernel::publish() — the only
/// serialized section left on the batch path, so its total is the batch
/// evaluator's contention bill.
inline constexpr const char* kBatchLockWait = "batch.lock_wait";
/// Scenario cells isolated as CellFailures under FailurePolicy::kQuarantine.
inline constexpr const char* kBatchQuarantined = "batch.quarantined";
/// Batches aborted by a RunControl CancelToken before every cell was handled.
inline constexpr const char* kBatchCancelled = "batch.cancelled";
/// Batches aborted by an expired RunControl Deadline.
inline constexpr const char* kBatchDeadlineExceeded =
    "batch.deadline_exceeded";

/// Shards serialized into / deserialized out of a ScenarioStore file.
inline constexpr const char* kStoreShardsWritten = "store.shards_written";
inline constexpr const char* kStoreShardsRead = "store.shards_read";
/// Payload bytes written to / read from scenario stores (footers excluded).
inline constexpr const char* kStoreBytesWritten = "store.bytes_written";
inline constexpr const char* kStoreBytesRead = "store.bytes_read";
/// StreamingSweep shards skipped because a checkpoint manifest already
/// recorded them as complete, vs shards evaluated (and committed) this run.
inline constexpr const char* kSweepShardsResumed = "sweep.shards_resumed";
inline constexpr const char* kSweepShardsCompleted = "sweep.shards_completed";

/// ShardedSweepDriver: shards this worker claimed, evaluated, and committed.
inline constexpr const char* kDriverShardsEvaluated =
    "driver.shards_evaluated";
/// Claims taken over from a dead or lease-expired peer.
inline constexpr const char* kDriverLeasesReclaimed =
    "driver.leases_reclaimed";
/// Claim attempts that found the shard already held by a live peer.
inline constexpr const char* kDriverClaimConflicts = "driver.claim_conflicts";
/// Result files folded by the merger, and wall time spent merging.
inline constexpr const char* kDriverShardsMerged = "driver.shards_merged";
inline constexpr const char* kDriverMergeWall = "driver.merge_wall";

/// util::fs layer: fsync(2) calls issued (file + directory), durable
/// commit_file completions, bytes written through write_all, and transient
/// EIO attempts absorbed by the bounded retry loop.
inline constexpr const char* kFsFsyncs = "fs.fsyncs";
inline constexpr const char* kFsCommits = "fs.commits";
inline constexpr const char* kFsBytesWritten = "fs.bytes_written";
inline constexpr const char* kFsEioRetries = "fs.eio_retries";

inline constexpr const char* kErlangEvaluations = "erlang.evaluations";
inline constexpr const char* kErlangCacheHits = "erlang.cache_hits";
inline constexpr const char* kErlangSteps = "erlang.steps";
/// Queries answered lock-free from the published snapshot tier.
inline constexpr const char* kErlangSnapshotHits = "erlang.snapshot_hits";
/// Times a thread resumed a recurrence privately in its extension arena.
inline constexpr const char* kErlangArenaExtensions =
    "erlang.arena_extensions";
/// Merge epochs: snapshots folded from the arenas and published.
inline constexpr const char* kErlangMerges = "erlang.merges";
}  // namespace names

/// Monotonic event counter. Thread-safe; increments are relaxed atomics.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Accumulates wall-clock time across (possibly concurrent) measured scopes.
class Timer {
 public:
  void add_nanos(std::uint64_t nanos) noexcept {
    nanos_.fetch_add(nanos, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t total_nanos() const noexcept {
    return nanos_.load(std::memory_order_relaxed);
  }
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double total_millis() const noexcept {
    return static_cast<double>(total_nanos()) / 1e6;
  }
  void reset() noexcept {
    nanos_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> nanos_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// RAII stopwatch: adds the elapsed wall time to a Timer on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer) noexcept
      : timer_(timer), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    timer_.add_nanos(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  }

 private:
  Timer& timer_;
  std::chrono::steady_clock::time_point start_;
};

/// Name-keyed registry of counters and timers. counter()/timer() return
/// references that stay valid for the registry's lifetime.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Timer& timer(const std::string& name);

  /// Snapshot of every metric as (name, value) rows, sorted by name.
  /// Timers render as two rows: `<name>.ms` and `<name>.calls`.
  struct Row {
    std::string name;
    double value = 0.0;
  };
  std::vector<Row> snapshot() const;

  /// Text dump, one `name = value` line per metric, sorted by name.
  void dump(std::ostream& out) const;

  /// Resets every counter and timer to zero (names stay registered).
  /// Intended for benches that measure phases; not for concurrent use with
  /// in-flight increments.
  void reset();

 private:
  mutable std::mutex mutex_;
  // node-based maps: references into the mapped values never invalidate.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Timer>> timers_;
};

/// The process-wide registry the library's own instrumentation reports to.
Registry& registry();

/// Machine-readable dump of a snapshot: a flat JSON object
/// `{"metrics": {"<name>": <value>, ...}}`, names sorted. This is the wire
/// format worker processes use to ship their counters to the sharded-sweep
/// merger (one file per worker), and the format parse_json reads back.
void to_json(std::ostream& out, const std::vector<Registry::Row>& rows);

/// registry()'s current snapshot as a JSON string (see to_json).
std::string to_json_string();

/// Parses the exact shape to_json emits back into rows. Throws IoError
/// naming the defect on anything else — a truncated or hand-edited worker
/// metrics file must fail the merge loudly, not sum garbage.
std::vector<Registry::Row> parse_json(const std::string& text);

}  // namespace vmcons::metrics
