// Fixed-width ASCII tables for bench output.
//
// Every bench binary prints the rows/series of one paper table or figure.
// AsciiTable right-aligns numeric columns, left-aligns text, and sizes each
// column to its widest cell, producing output that diffs cleanly run-to-run.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace vmcons {

class AsciiTable {
 public:
  /// Sets the column headers; resets any existing rows.
  void set_header(std::vector<std::string> columns);

  /// Appends a pre-formatted row (width must match the header).
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats each double with the given precision.
  void add_numeric_row(const std::string& label,
                       const std::vector<double>& values, int precision = 3);

  /// Number of data rows.
  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with box-drawing rules; `title` prints above the table.
  void print(std::ostream& out, const std::string& title = "") const;

  /// Renders to a string (used by tests).
  std::string to_string(const std::string& title = "") const;

  /// Formats one double with fixed precision (shared helper).
  static std::string format(double value, int precision = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a one-line "key: value" summary block used by benches.
void print_kv(std::ostream& out, const std::string& key, const std::string& value);
void print_kv(std::ostream& out, const std::string& key, double value, int precision = 3);

}  // namespace vmcons
