// Crash-consistent filesystem layer: every persistence path goes through
// these wrappers, and every wrapper is a fault-injection point.
//
// The sweep stack's durability story (scenario stores, checkpoint
// manifests, claim ledgers, pid locks) used to be spread over ofstream
// calls whose failures were checked late or not at all, and renames that
// were atomic but not durable. This layer centralizes both concerns:
//
//   * Every syscall wrapper returns a Status carrying the errno, so a short
//     write, EIO, or ENOSPC surfaces at the call that hit it — call sites
//     convert to IoError naming their path/shard/record, never a generic
//     "write failed" three layers up.
//   * commit_file() is THE durable commit point: write a temporary in the
//     same directory, fsync it, rename(2) onto the final name, fsync the
//     parent directory. A reader sees the old file or the complete new
//     file, and after commit_file returns the new file survives power loss.
//     scripts/check_commit_points.sh enforces that no persistence path
//     renames outside this helper.
//   * Transient EIO on data reads/writes is retried a bounded number of
//     times with deterministic jittered backoff (util::Backoff); ENOSPC and
//     every other errno fail immediately. fsync failures are never retried:
//     after a failed fsync the kernel may have dropped the dirty pages, so
//     retrying can report durability that does not exist.
//
// FsFaultInjector mirrors util::FaultInjector (same seed plumbing, same
// disarmed-fast-path design, same pinned-seed replay discipline — see
// fault_inject.hpp): each wrapper call is an *op* at a named *site*, ops
// are counted per site, and an armed site can deliver errno failures
// (random-rate or exactly-at-op-N), short writes (the failing write lands a
// partial prefix first — a torn write), and crash-at-op-N (throws
// CrashInjectedError before or after the syscall, so tests can stop a
// persistence operation at every boundary it has). Draws are a pure
// function of (seed, site, op index): a given armed run replays
// bit-identically.
#pragma once

#include <atomic>
#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "util/error.hpp"

namespace vmcons::util::fs {

/// Registry of fs fault-site names, one per persistence call site family.
/// Wrappers take the site explicitly so two callers of write_all can be
/// crashed independently. Arming an unknown site throws (typos fail loudly).
namespace sites {
/// ScenarioStoreWriter: create/truncate + header write.
inline constexpr std::string_view kStoreOpen = "fs.store.open";
/// ScenarioStoreWriter: one op per shard-payload write attempt.
inline constexpr std::string_view kStoreShard = "fs.store.shard";
/// ScenarioStoreWriter::finish: footer/trailer writes and the two fsyncs
/// that make the trailer a commit point.
inline constexpr std::string_view kStoreFinish = "fs.store.finish";
/// ScenarioStore::read_shard positional reads (and the validating open).
inline constexpr std::string_view kStoreRead = "fs.store.read";
/// StreamingSweep checkpoint manifest: open/truncate-tail/header.
inline constexpr std::string_view kManifestOpen = "fs.manifest.open";
/// StreamingSweep checkpoint manifest: per-shard row appends + fsync.
inline constexpr std::string_view kManifestAppend = "fs.manifest.append";
/// PidLockFile create/read/takeover.
inline constexpr std::string_view kLock = "fs.lock";
/// ClaimLedger claim create/read/takeover/release.
inline constexpr std::string_view kClaim = "fs.claim";
/// ClaimLedger result-file durable commit (write+fsync+rename+dirfsync).
inline constexpr std::string_view kResultCommit = "fs.result.commit";
/// Worker metrics snapshot durable commit.
inline constexpr std::string_view kMetricsCommit = "fs.metrics.commit";
/// Generic whole-file reads (merge inputs, util::read_file default).
inline constexpr std::string_view kRead = "fs.read";
}  // namespace sites

inline constexpr std::size_t kSiteCount = 11;

/// Outcome of one wrapper call. err is the errno (0 on success); bytes is
/// how many bytes actually landed/were read before the failure, so callers
/// can report exactly where a short write tore.
struct Status {
  int err = 0;
  std::size_t bytes = 0;

  bool ok() const noexcept { return err == 0; }
  /// Stable classification for structured consumers; fs failures are all
  /// kIoError (the errno carries the detail).
  ErrorCode code() const noexcept {
    return err == 0 ? ErrorCode::kUnknown : ErrorCode::kIoError;
  }
  /// strerror text of err ("No space left on device"), "ok" when clean.
  std::string message() const;
};

/// Move-only RAII descriptor. Wrappers populate it via the open functions;
/// the destructor closes silently (call close() where the close result
/// matters, e.g. before judging a commit durable).
class File {
 public:
  File() = default;
  File(File&& other) noexcept;
  File& operator=(File&& other) noexcept;
  ~File();

  File(const File&) = delete;
  File& operator=(const File&) = delete;

  bool is_open() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }
  const std::string& path() const noexcept { return path_; }

  /// Closes the descriptor (idempotent) and reports the close(2) result —
  /// on NFS a deferred write error can surface here, so durable paths check
  /// it instead of relying on the silent destructor.
  Status close() noexcept;

  /// Takes ownership of an already-open descriptor (used by the open
  /// wrappers and tests only).
  void adopt(int fd, std::string path) noexcept;

 private:
  int fd_ = -1;
  std::string path_;
};

// --- syscall wrappers -----------------------------------------------------
// Each call consults the global FsFaultInjector at `site` (one op per call;
// write_all/pread_all count one op per underlying attempt, retries
// included), loops on EINTR, and returns the first real failure as Status.

/// O_WRONLY|O_CREAT|O_TRUNC, mode 0644.
Status create_truncate(const std::string& path, std::string_view site,
                       File& out);
/// O_WRONLY|O_APPEND (file must exist).
Status open_append(const std::string& path, std::string_view site, File& out);
/// O_RDONLY.
Status open_read(const std::string& path, std::string_view site, File& out);

/// O_CREAT|O_EXCL claim primitive: atomically creates `path` and writes
/// `contents`. Status.err == EEXIST means another process won (not an
/// error); any other errno is a real failure and the partial file is
/// unlinked. The create is atomic but the contents are not fsynced: claim
/// records are coordination state whose loss is covered by leases.
Status create_exclusive_file(const std::string& path,
                             std::string_view contents, std::string_view site);

/// Writes all n bytes (retrying transient EIO with backoff, resuming after
/// short writes). On failure Status.bytes reports the prefix that landed.
Status write_all(File& file, const void* data, std::size_t n,
                 std::string_view site);

/// Positional read of exactly n bytes at `offset` (retrying transient EIO
/// with backoff). Hitting end-of-file before n bytes is reported as
/// err == ENODATA with Status.bytes holding the partial count.
Status pread_all(const File& file, void* data, std::size_t n,
                 std::uint64_t offset, std::string_view site);

/// fsync(2) on the file. Never retried (see header comment).
Status fsync_file(const File& file, std::string_view site);

/// Opens and fsyncs the directory containing `path`, making a rename into
/// that directory durable.
Status fsync_parent_dir(const std::string& path, std::string_view site);

/// rename(2). Atomic, but durable only after fsync_parent_dir.
Status rename_file(const std::string& from, const std::string& to,
                   std::string_view site);

/// unlink(2); ENOENT is returned (callers usually treat it as benign).
Status unlink_file(const std::string& path, std::string_view site);

/// truncate(2) to `bytes` (drops a torn tail before appending).
Status truncate_file(const std::string& path, std::uint64_t bytes,
                     std::string_view site);

/// Bumps mtime to now (utimensat); PidLockFile::refresh uses it so a live
/// holder's lock never looks lease-stale to remote hosts.
Status touch_file(const std::string& path, std::string_view site);

/// Whole file into `out`. err == ENOENT when the file does not exist.
Status read_file(const std::string& path, std::string& out,
                 std::string_view site);

/// THE durable commit point (and the only rename persistence code may use —
/// scripts/check_commit_points.sh enforces it): writes `path + ".tmp." +
/// tag`, fsyncs it, renames onto `path`, fsyncs the parent directory.
/// Readers see old-or-complete-new at every instant, and success means the
/// new contents survive power loss. On failure the temporary is unlinked
/// (best-effort) and the Status names the failing step's errno.
Status commit_file(const std::string& path, std::string_view contents,
                   const std::string& tag, std::string_view site);

// --- fault injection ------------------------------------------------------

/// Deterministic seeded fault injector for the fs layer. See the file
/// header; the shape deliberately mirrors util::FaultInjector.
class FsFaultInjector {
 public:
  /// What an armed site delivers. Effects compose: a crash op crashes, an
  /// error op fails with error_errno, and when `short_write` is set a
  /// failing *write* op first lands half of its remaining bytes (a torn
  /// write). error_rate draws and error_at_op are independent triggers.
  struct SiteConfig {
    double error_rate = 0.0;        ///< per-op failure probability
    std::uint64_t error_at_op = 0;  ///< 1-based op that fails; 0 = off
    int error_errno = EIO;          ///< errno delivered by error triggers
    bool short_write = false;       ///< failing writes tear (partial lands)
    std::uint64_t crash_at_op = 0;  ///< 1-based op that crashes; 0 = off
    bool crash_after = false;       ///< crash after the syscall, not before
  };

  /// What a wrapper should do for the current op. A crash_at_op with
  /// crash_after == false throws from on_op directly; with
  /// crash_after == true the plan carries `crash_after`, and the wrapper
  /// calls throw_crash() right after the syscall completes.
  struct FaultPlan {
    bool fail = false;
    int err = 0;
    bool short_write = false;
    bool crash_after = false;
    std::uint64_t op = 0;  ///< 1-based op number, for crash messages
  };

  FsFaultInjector();
  ~FsFaultInjector();

  FsFaultInjector(const FsFaultInjector&) = delete;
  FsFaultInjector& operator=(const FsFaultInjector&) = delete;

  /// Arms `site` (must be in known_sites(); rates in [0,1]). An all-default
  /// SiteConfig is valid and useful: it makes the site count ops without
  /// injecting, which is how tests discover how many ops an operation has
  /// before choosing crash points.
  void arm(std::string_view site, SiteConfig config);

  /// Disarms every site (op counters are left intact; see reset_ops).
  void disarm_all();

  /// Reseeds the draw stream. Default seed 2009; tier1 pins via the same
  /// VMCONS_FAULT_SEED convention as util::FaultInjector.
  void set_seed(std::uint64_t seed);
  std::uint64_t seed() const;

  /// One relaxed load; wrappers gate all injection work behind it.
  static bool enabled() noexcept {
    return g_enabled.load(std::memory_order_relaxed);
  }

  /// Called by a wrapper for each op at `site`. Counts the op (armed sites
  /// only), throws CrashInjectedError at an armed pre-syscall crash op, and
  /// returns the plan (error / short-write / crash_after) otherwise.
  FaultPlan on_op(std::string_view site);

  /// Throws the CrashInjectedError for a FaultPlan whose crash_after fired;
  /// wrappers call it immediately after the op's syscall.
  [[noreturn]] void throw_crash(std::string_view site, std::uint64_t op) const;

  /// Ops counted at `site` since the last reset_ops (armed intervals only).
  std::uint64_t ops_at(std::string_view site) const;
  void reset_ops();

  static std::span<const std::string_view> known_sites() noexcept;
  static FsFaultInjector& global();

 private:
  struct Config;  // private to fs.cpp

  std::shared_ptr<const Config> load() const;
  void publish_enabled() const;

  static std::atomic<bool> g_enabled;

  std::atomic<std::shared_ptr<const Config>> config_;
  std::atomic<std::uint64_t> ops_[kSiteCount] = {};
};

/// RAII arming guard for tests: disarms the global fs injector, restores
/// its seed, and resets op counters on scope exit.
class ScopedFsFaults {
 public:
  ScopedFsFaults();
  ~ScopedFsFaults();
  ScopedFsFaults(const ScopedFsFaults&) = delete;
  ScopedFsFaults& operator=(const ScopedFsFaults&) = delete;

 private:
  std::uint64_t saved_seed_;
};

}  // namespace vmcons::util::fs
