#include "util/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace vmcons::log {
namespace {

std::atomic<Level> g_level{Level::kWarn};
std::mutex g_sink_mutex;

const char* level_name(Level level) {
  switch (level) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo:  return "INFO ";
    case Level::kWarn:  return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff:   return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void write(Level level, const std::string& message) {
  if (level < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::cerr << "[vmcons " << level_name(level) << "] " << message << '\n';
}

}  // namespace vmcons::log
