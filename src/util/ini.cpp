#include "util/ini.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace vmcons {
namespace {

std::string trim(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t\r");
  if (begin == std::string::npos) {
    return "";
  }
  const auto end = text.find_last_not_of(" \t\r");
  return text.substr(begin, end - begin + 1);
}

}  // namespace

bool IniSection::has(const std::string& key) const {
  for (const auto& [k, v] : entries) {
    (void)v;
    if (k == key) {
      return true;
    }
  }
  return false;
}

std::string IniSection::get(const std::string& key,
                            const std::string& fallback) const {
  for (const auto& [k, v] : entries) {
    if (k == key) {
      return v;
    }
  }
  return fallback;
}

double IniSection::get_double(const std::string& key, double fallback) const {
  const std::string text = get(key);
  if (text.empty()) {
    return fallback;
  }
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    throw IoError("[" + name + "] " + key + ": expected a number, got '" +
                  text + "'");
  }
  return value;
}

long long IniSection::get_int(const std::string& key, long long fallback) const {
  const std::string text = get(key);
  if (text.empty()) {
    return fallback;
  }
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    throw IoError("[" + name + "] " + key + ": expected an integer, got '" +
                  text + "'");
  }
  return value;
}

std::vector<const IniSection*> IniDocument::all(const std::string& name) const {
  std::vector<const IniSection*> matches;
  for (const auto& section : sections) {
    if (section.name == name) {
      matches.push_back(&section);
    }
  }
  return matches;
}

const IniSection* IniDocument::first(const std::string& name) const {
  for (const auto& section : sections) {
    if (section.name == name) {
      return &section;
    }
  }
  return nullptr;
}

IniDocument ini_parse(const std::string& text) {
  IniDocument document;
  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    // Strip comments that start a token (allow '#'/';' mid-value only after
    // whitespace, the common INI convention).
    for (const char marker : {'#', ';'}) {
      const auto position = line.find(marker);
      if (position != std::string::npos &&
          (position == 0 || line[position - 1] == ' ' ||
           line[position - 1] == '\t')) {
        line.erase(position);
      }
    }
    const std::string trimmed = trim(line);
    if (trimmed.empty()) {
      continue;
    }
    if (trimmed.front() == '[') {
      if (trimmed.back() != ']' || trimmed.size() < 3) {
        throw IoError("INI line " + std::to_string(line_number) +
                      ": malformed section header");
      }
      document.sections.push_back(
          {trim(trimmed.substr(1, trimmed.size() - 2)), {}});
      continue;
    }
    const auto equals = trimmed.find('=');
    if (equals == std::string::npos) {
      throw IoError("INI line " + std::to_string(line_number) +
                    ": expected 'key = value'");
    }
    if (document.sections.empty()) {
      document.sections.push_back({"", {}});
    }
    document.sections.back().entries.emplace_back(
        trim(trimmed.substr(0, equals)), trim(trimmed.substr(equals + 1)));
  }
  return document;
}

IniDocument ini_parse_file(const std::string& path) {
  std::ifstream stream(path);
  if (!stream) {
    throw IoError("cannot read INI file: " + path);
  }
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  return ini_parse(buffer.str());
}

}  // namespace vmcons
