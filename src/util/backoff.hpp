// Deterministic seeded jittered exponential backoff.
//
// Two consumers need to wait politely: a sharded-sweep worker whose every
// unfinished shard is claimed by a live peer (poll-loop contention), and
// the fs layer retrying a transient EIO. Fixed sleeps either hammer the
// ledger (too short) or waste wall-clock near a lease expiry (too long);
// exponential backoff with jitter is the standard fix, but a random jitter
// source would break the repo's replay discipline — two runs of a pinned-
// seed fault test must sleep the same schedule. So the jitter here is a
// pure function of (seed, step): delay_k = min(max, initial * multiplier^k)
// scaled by a factor drawn deterministically from [1 - jitter, 1 + jitter].
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "util/error.hpp"

namespace vmcons::util {

class Backoff {
 public:
  struct Options {
    std::chrono::microseconds initial{2000};
    std::chrono::microseconds max{1000000};
    double multiplier = 2.0;
    /// Relative jitter in [0, 1): each delay is scaled by a deterministic
    /// factor in [1 - jitter, 1 + jitter].
    double jitter = 0.25;
  };

  explicit Backoff(Options options, std::uint64_t seed = 0)
      : options_(options), seed_(seed) {
    VMCONS_REQUIRE(options_.initial.count() > 0 && options_.max.count() > 0,
                   "Backoff delays must be positive");
    VMCONS_REQUIRE(options_.multiplier >= 1.0,
                   "Backoff multiplier must be >= 1");
    VMCONS_REQUIRE(options_.jitter >= 0.0 && options_.jitter < 1.0,
                   "Backoff jitter must be in [0, 1)");
  }

  /// The next delay in the schedule (advances the step).
  std::chrono::microseconds next() noexcept {
    const double base = static_cast<double>(options_.initial.count());
    const double cap = static_cast<double>(options_.max.count());
    double delay = base;
    // Bounded multiply-up instead of pow(): exact for the small step counts
    // that matter and saturates at the cap without overflow.
    for (std::uint64_t i = 0; i < step_ && delay < cap; ++i) {
      delay *= options_.multiplier;
    }
    delay = std::min(delay, cap);
    const double factor =
        1.0 - options_.jitter + 2.0 * options_.jitter * unit_draw(step_);
    ++step_;
    const auto scaled = static_cast<std::int64_t>(delay * factor);
    return std::chrono::microseconds(std::max<std::int64_t>(1, scaled));
  }

  /// Restarts the schedule (call after the contended resource made
  /// progress, so the next wait starts short again).
  void reset() noexcept { step_ = 0; }

  std::uint64_t step() const noexcept { return step_; }

 private:
  /// splitmix64-style mix of (seed, step) into [0, 1); no global state, no
  /// clock, so schedules replay across runs and processes.
  double unit_draw(std::uint64_t step) const noexcept {
    std::uint64_t x = seed_ ^ (step + 0x9e3779b97f4a7c15ULL);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<double>(x >> 11) * 0x1.0p-53;
  }

  Options options_;
  std::uint64_t seed_ = 0;
  std::uint64_t step_ = 0;
};

}  // namespace vmcons::util
