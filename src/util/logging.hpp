// Minimal leveled logger.
//
// The library logs sparingly (solver iteration warnings, simulation
// milestones). Benches and examples raise the level to Info. The logger is
// intentionally a single global sink guarded by a mutex: log volume in this
// library is low and contention-free performance is not a goal here.
#pragma once

#include <sstream>
#include <string>

namespace vmcons::log {

enum class Level { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Sets the global minimum level; messages below it are dropped.
void set_level(Level level);

/// Returns the current global minimum level.
Level level();

/// Emits one line to stderr with a level prefix. Thread-safe.
void write(Level level, const std::string& message);

namespace detail {
class LineBuilder {
 public:
  explicit LineBuilder(Level level) : level_(level) {}
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;
  ~LineBuilder() { write(level_, stream_.str()); }

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LineBuilder trace() { return detail::LineBuilder(Level::kTrace); }
inline detail::LineBuilder debug() { return detail::LineBuilder(Level::kDebug); }
inline detail::LineBuilder info() { return detail::LineBuilder(Level::kInfo); }
inline detail::LineBuilder warn() { return detail::LineBuilder(Level::kWarn); }
inline detail::LineBuilder error() { return detail::LineBuilder(Level::kError); }

}  // namespace vmcons::log
