// Minimal INI parser for scenario files.
//
// Grammar: `[section]` headers, `key = value` pairs, `#` or `;` comments,
// blank lines ignored. Repeated section names are distinct sections (the
// scenario format uses one `[service]` section per service). Values are
// kept as trimmed strings; typed accessors convert on demand.
#pragma once

#include <string>
#include <vector>

namespace vmcons {

struct IniSection {
  std::string name;
  std::vector<std::pair<std::string, std::string>> entries;

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback = "") const;
  double get_double(const std::string& key, double fallback) const;
  long long get_int(const std::string& key, long long fallback) const;
};

struct IniDocument {
  std::vector<IniSection> sections;

  /// All sections with the given name (case-sensitive).
  std::vector<const IniSection*> all(const std::string& name) const;
  /// First section with the given name, or nullptr.
  const IniSection* first(const std::string& name) const;
};

/// Parses INI text; throws IoError on malformed lines.
IniDocument ini_parse(const std::string& text);

/// Reads and parses a file; throws IoError if unreadable.
IniDocument ini_parse_file(const std::string& path);

}  // namespace vmcons
