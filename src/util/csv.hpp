// CSV emission and parsing for bench output and trace files.
//
// Quoting follows RFC 4180: fields containing comma, quote, or newline are
// quoted and embedded quotes are doubled. Numeric cells are formatted with
// up to 12 significant digits so round-trips are lossless for the value
// ranges used in this library.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/fs.hpp"

namespace vmcons {

/// One CSV cell: text, integer, or floating point.
using CsvCell = std::variant<std::string, long long, double>;

/// Renders a cell per RFC 4180 quoting rules.
std::string csv_format_cell(const CsvCell& cell);

/// Splits one CSV line into raw fields, honouring quoted fields. Throws
/// IoError (ErrorCode::kIoError) when the line ends inside an unterminated
/// quoted field — the signature of a truncated record — instead of silently
/// returning the partial field.
std::vector<std::string> csv_parse_line(const std::string& line);

/// Streaming CSV writer. Two backends:
///
///   * ostream mode — best-effort buffered output for bench tables and
///     reports; failures follow the stream's own error state.
///   * durable mode — rows go through the util::fs crash-consistent layer to
///     an open descriptor at a named fault site; every write is checked
///     (IoError naming the path on short write / EIO / ENOSPC) and commit()
///     fsyncs, so a caller can make each row a durable commit point (the
///     StreamingSweep checkpoint manifest does, per shard).
class CsvWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Durable mode: writes through `file` (must stay open for the writer's
  /// lifetime) via util::fs at `site`.
  CsvWriter(util::fs::File& file, std::string_view site)
      : file_(&file), site_(site) {}

  /// Writes the header row. Must be called before any data row (enforced).
  void header(const std::vector<std::string>& columns);

  /// Adopts an already-written header of `columns` columns without emitting
  /// one, so rows can be appended to an existing document (e.g. a checkpoint
  /// manifest being resumed). Counts as the header for the before-rows rule.
  void continue_rows(std::size_t columns);

  /// Writes one data row; the column count must match the header.
  void row(const std::vector<CsvCell>& cells);

  /// Durable mode only: fsyncs the underlying file, making every row
  /// written so far a commit point. Throws IoError on fsync failure.
  void commit();

  /// Number of data rows written so far.
  std::size_t rows_written() const noexcept { return rows_; }

 private:
  void emit(const std::string& line);

  std::ostream* out_ = nullptr;
  util::fs::File* file_ = nullptr;
  std::string_view site_;
  std::size_t columns_ = 0;
  bool header_written_ = false;
  std::size_t rows_ = 0;
};

/// Fully-parsed CSV document (header + rows), for tests and trace replay.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a named column; throws InvalidArgument if absent.
  std::size_t column(const std::string& name) const;
};

/// Parses an entire CSV text (first record is the header). Record-level:
/// quoted fields may contain embedded newlines and CRLF line endings are
/// accepted. Throws IoError if the text ends inside an unterminated quoted
/// field (truncated input).
CsvDocument csv_parse(const std::string& text);

}  // namespace vmcons
