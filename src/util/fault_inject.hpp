// Deterministic, seeded fault injection for run-control testing.
//
// Quarantine, cancellation, and deadline behavior can only be trusted if it
// is exercised under failures — but failures must be reproducible, or a
// red run can never be replayed. FaultInjector makes synthetic failures a
// pure function of (seed, site, index): each *site* is a named point in the
// library (registered below), and each check passes an *index* derived from
// the work unit itself — a scenario index, the bit pattern of an Erlang
// query — never from thread identity or wall time. The same armed
// configuration therefore injects the same faults into the same cells
// whether the batch runs on 1, 2, or 8 workers, and a quarantined run's
// failure report is bit-reproducible.
//
// Sites can inject two effects, independently drawn:
//   * errors — a NumericError with ErrorCode::kFaultInjected, thrown from
//     the site (exercises quarantine / fail-fast paths);
//   * delays — a sleep of `delay` at the site (exercises deadlines and
//     cancellation latency without perturbing results).
//
// The disarmed fast path is one relaxed atomic load (FaultInjector::
// enabled()), hoisted out of query loops by the call sites, so production
// runs pay nothing. Call sites only consult the process-wide global()
// instance; tests arm it and must disarm_all() when done (see ScopedFaults).
#pragma once

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>

namespace vmcons::util {

/// Registry of injection-site names. A site string passed to check() must
/// be one of these (arming an unknown site throws), so a typo'd site is an
/// error, not a silently never-firing fault.
namespace fault_sites {
/// Per Erlang-B blocking evaluation; index derives from the query bits.
inline constexpr std::string_view kErlangEval = "erlang.eval";
/// Per staffing (minimum-server) inversion; index derives from the query.
inline constexpr std::string_view kStaffingInverse = "staffing.inverse";
/// Once per BatchEvaluator shard; index is the shard number. Shard
/// boundaries depend on the pool size, so use this site for delays (or to
/// exercise the quarantine retry path), not for exact-cell fault placement.
inline constexpr std::string_view kBatchShard = "batch.shard";
/// Once per scenario cell of a batch; index is the scenario index — the
/// site to use when a test must predict exactly which cells fail.
inline constexpr std::string_view kBatchCell = "batch.cell";
/// Once per StreamingSweep store shard, before the shard is read; index is
/// the global shard number. Fires outside the evaluator's quarantine, so an
/// injected error propagates out of StreamingSweep::run() like a process
/// kill — the site for checkpoint/resume (kill-and-resume) tests.
inline constexpr std::string_view kSweepShard = "sweep.shard";
/// Once per ShardedSweepDriver claim attempt, before the ledger is touched;
/// index is the shard number. An injected error escapes run_worker() like a
/// worker crash between shards (its committed results survive, no claim is
/// left behind).
inline constexpr std::string_view kDriverClaim = "driver.claim";
/// Once per successfully claimed shard, after the claim is durable but
/// before the shard is evaluated or committed; index is the shard number.
/// An injected error kills the worker *holding a lease* — the site for
/// lease-expiry / peer-reclaim tests.
inline constexpr std::string_view kDriverShard = "driver.shard";
}  // namespace fault_sites

/// Index helper for value-derived sites: mixes the bit patterns of up to
/// two doubles and an integer into one stable 64-bit index, so a draw at an
/// (rho, target) query is the same no matter which shard or thread staged it.
inline std::uint64_t fault_index(double a, double b = 0.0,
                                 std::uint64_t c = 0) noexcept {
  const std::uint64_t kMul = 0x9e3779b97f4a7c15ULL;
  std::uint64_t h = std::bit_cast<std::uint64_t>(a);
  h = (h ^ (h >> 30)) * kMul;
  h ^= std::bit_cast<std::uint64_t>(b) + kMul * 3;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  h ^= c * kMul;
  return h ^ (h >> 31);
}

class FaultInjector {
 public:
  /// What an armed site injects. Rates are probabilities in [0, 1]; the
  /// error and delay draws are independent.
  struct SiteConfig {
    double error_rate = 0.0;
    double delay_rate = 0.0;
    std::chrono::microseconds delay{0};
  };

  FaultInjector();
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms `site` with `config` (replacing any previous config for it).
  /// Throws InvalidArgument for a site name not in known_sites() or a rate
  /// outside [0, 1].
  void arm(std::string_view site, SiteConfig config);

  /// Disarms every site; check() becomes a no-op again.
  void disarm_all();

  /// Reseeds the draw stream (applies to subsequent checks). The default
  /// seed is 2009; tests pin it via scripts/tier1.sh so fault suites replay.
  void set_seed(std::uint64_t seed);

  std::uint64_t seed() const;

  /// True when any site of the *global* injector is armed. One relaxed
  /// atomic load — call sites gate all injection work behind this, so the
  /// disarmed hot path costs nothing measurable.
  static bool enabled() noexcept {
    return g_enabled.load(std::memory_order_relaxed);
  }

  /// Evaluates the (seed, site, index) draws for `site`: sleeps if the
  /// delay draw fires, then throws NumericError(kFaultInjected) if the
  /// error draw fires. No-op when the site is not armed.
  void check(std::string_view site, std::uint64_t index) const;

  /// True iff check(site, index) would throw under the current arming —
  /// lets tests compute the exact expected failure set up front.
  bool would_fail(std::string_view site, std::uint64_t index) const;

  /// Every site name compiled into the library.
  static std::span<const std::string_view> known_sites() noexcept;

  /// The process-wide injector all library sites consult. Disarmed by
  /// default; arming it flips enabled().
  static FaultInjector& global();

 private:
  struct Config;  // private to fault_inject.cpp

  std::shared_ptr<const Config> load() const;
  void publish_enabled() const;

  static std::atomic<bool> g_enabled;

  std::atomic<std::shared_ptr<const Config>> config_;
};

/// RAII arming guard for tests: disarms the global injector (and restores
/// its seed) on scope exit, so a failing test cannot leak faults into the
/// rest of the suite.
class ScopedFaults {
 public:
  ScopedFaults();
  ~ScopedFaults();
  ScopedFaults(const ScopedFaults&) = delete;
  ScopedFaults& operator=(const ScopedFaults&) = delete;

 private:
  std::uint64_t saved_seed_;
};

}  // namespace vmcons::util
