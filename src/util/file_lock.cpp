#include "util/file_lock.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/error.hpp"
#include "util/fs.hpp"

namespace vmcons::util {
namespace {

[[noreturn]] void lock_fail(const std::string& path, const std::string& what) {
  throw IoError("lock file '" + path + "': " + what);
}

std::string pid_record(::pid_t pid) {
  return std::to_string(static_cast<long long>(pid)) + " " +
         local_hostname() + "\n";
}

struct LockRecord {
  ::pid_t pid = 0;
  std::string hostname;  ///< empty for legacy pid-only records (= local)
};

/// Record in a lock file; nullopt for a missing, empty, or garbled record
/// (a holder that crashed between create and write looks garbled — and the
/// write follows the create immediately, so a garbled record is a crash
/// footprint, not an in-progress writer).
std::optional<LockRecord> read_lock_record(const std::string& path) {
  const auto contents = read_file(path);
  if (!contents.has_value()) {
    return std::nullopt;
  }
  char* end = nullptr;
  const long long pid = std::strtoll(contents->c_str(), &end, 10);
  if (end == contents->c_str() || pid <= 0) {
    return std::nullopt;
  }
  LockRecord record;
  record.pid = static_cast<::pid_t>(pid);
  // Optional hostname after the pid; trailing newline stripped.
  const char* p = end;
  while (*p == ' ') {
    ++p;
  }
  while (*p != '\0' && *p != '\n' && *p != ' ') {
    record.hostname.push_back(*p++);
  }
  return record;
}

/// Age of the lock file in milliseconds; nullopt when it vanished.
std::optional<std::int64_t> lock_age_ms(const std::string& path) {
  struct ::stat st {};
  if (::stat(path.c_str(), &st) != 0) {
    return std::nullopt;
  }
  const auto now = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::system_clock::now().time_since_epoch())
                       .count();
  return now - static_cast<std::int64_t>(st.st_mtime) * 1000;
}

}  // namespace

bool pid_alive(::pid_t pid) noexcept {
  if (pid <= 0) {
    return false;
  }
  if (::kill(pid, 0) == 0) {
    return true;
  }
  // EPERM: the process exists but belongs to someone we cannot signal.
  return errno == EPERM;
}

const std::string& local_hostname() {
  static const std::string hostname = [] {
    char buffer[256] = {};
    if (::gethostname(buffer, sizeof buffer - 1) != 0 || buffer[0] == '\0') {
      return std::string("localhost");
    }
    std::string name(buffer);
    for (char& c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                      c == '-';
      if (!ok) {
        c = '_';
      }
    }
    return name;
  }();
  return hostname;
}

std::optional<std::string> read_file(const std::string& path) {
  std::string contents;
  const fs::Status status = fs::read_file(path, contents, fs::sites::kRead);
  if (status.err == ENOENT) {
    return std::nullopt;
  }
  if (!status.ok()) {
    throw IoError("file '" + path + "': read failed after " +
                  std::to_string(status.bytes) + " bytes: " +
                  status.message());
  }
  return contents;
}

PidLockFile::PidLockFile(std::string path, std::string what,
                         std::chrono::milliseconds lease)
    : path_(std::move(path)) {
  const ::pid_t self = ::getpid();
  const std::string record = pid_record(self);
  for (int attempt = 0; attempt < 4; ++attempt) {
    const fs::Status created =
        fs::create_exclusive_file(path_, record, fs::sites::kLock);
    if (created.ok()) {
      return;  // clean acquisition
    }
    if (created.err != EEXIST) {
      lock_fail(path_, "exclusive create failed: " + created.message());
    }
    const std::optional<LockRecord> holder = read_lock_record(path_);
    bool stale = true;
    if (holder.has_value()) {
      const bool is_local =
          holder->hostname.empty() || holder->hostname == local_hostname();
      if (is_local) {
        // Same host: the pid probe is authoritative, no lease wait.
        if (pid_alive(holder->pid)) {
          throw IoError(what + " is locked by live pid " +
                        std::to_string(static_cast<long long>(holder->pid)) +
                        " ('" + path_ +
                        "'); refusing to run two sweeps against it");
        }
      } else {
        // Another host: its pid numbers mean nothing here. The only
        // liveness signal is the lock's age against the lease (holders
        // refresh() at progress points).
        const auto age = lock_age_ms(path_);
        if (age.has_value() && *age <= lease.count()) {
          throw IoError(
              what + " is locked by pid " +
              std::to_string(static_cast<long long>(holder->pid)) +
              " on host '" + holder->hostname + "' ('" + path_ +
              "') and the lease has not expired; refusing to run two "
              "sweeps against it");
        }
        stale = age.has_value();  // vanished mid-check: loop and re-create
      }
    }
    if (!stale) {
      continue;
    }
    // Stale: take over by committing a fresh lock on top, then confirm by
    // read-back that our rename won. A loser of the takeover race loops
    // and now sees a live holder.
    const fs::Status committed = fs::commit_file(
        path_, record, std::to_string(static_cast<long long>(self)),
        fs::sites::kLock);
    if (!committed.ok()) {
      lock_fail(path_, "stale-lock takeover failed: " + committed.message());
    }
    const std::optional<LockRecord> now = read_lock_record(path_);
    if (now.has_value() && now->pid == self &&
        (now->hostname.empty() || now->hostname == local_hostname())) {
      return;
    }
  }
  lock_fail(path_, "could not acquire after repeated stale-lock takeovers");
}

PidLockFile::~PidLockFile() {
  // Only release a lock that is still ours: if a peer broke the lock as
  // stale (it cannot have, while we live and refresh, but belt-and-braces)
  // we must not unlink their lock.
  try {
    const std::optional<LockRecord> holder = read_lock_record(path_);
    if (holder.has_value() && holder->pid == ::getpid() &&
        (holder->hostname.empty() ||
         holder->hostname == local_hostname())) {
      fs::unlink_file(path_, fs::sites::kLock);
    }
  } catch (...) {
    // Destructor: an unreadable lock file stays behind and ages out via
    // the lease rule; throwing here would terminate the process.
  }
}

void PidLockFile::refresh() const noexcept {
  fs::touch_file(path_, fs::sites::kLock);
}

}  // namespace vmcons::util
