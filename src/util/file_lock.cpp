#include "util/file_lock.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include "util/error.hpp"

namespace vmcons::util {
namespace {

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw IoError("lock file '" + path + "': " + what);
}

std::string errno_text() {
  return std::string(std::strerror(errno));
}

}  // namespace

bool pid_alive(::pid_t pid) noexcept {
  if (pid <= 0) {
    return false;
  }
  if (::kill(pid, 0) == 0) {
    return true;
  }
  // EPERM: the process exists but belongs to someone we cannot signal.
  return errno == EPERM;
}

bool create_exclusive(const std::string& path, const std::string& contents) {
  const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) {
    if (errno == EEXIST) {
      return false;
    }
    fail(path, "exclusive create failed: " + errno_text());
  }
  std::size_t written = 0;
  while (written < contents.size()) {
    const ::ssize_t n = ::write(fd, contents.data() + written,
                                contents.size() - written);
    if (n < 0) {
      const std::string reason = errno_text();
      ::close(fd);
      ::unlink(path.c_str());
      fail(path, "write after exclusive create failed: " + reason);
    }
    written += static_cast<std::size_t>(n);
  }
  ::close(fd);
  return true;
}

void write_file_atomic(const std::string& path, const std::string& contents,
                       const std::string& tag) {
  const std::string tmp = path + ".tmp." + tag;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << contents;
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      fail(path, "cannot write temporary '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string reason = errno_text();
    std::remove(tmp.c_str());
    fail(path, "rename commit failed: " + reason);
  }
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (errno == ENOENT) {
      return std::nullopt;
    }
    // Distinguish "not there" from "there but unreadable" where errno lets
    // us; an unreadable existing file is a real error.
    if (::access(path.c_str(), F_OK) != 0) {
      return std::nullopt;
    }
    fail(path, "cannot open for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

namespace {

std::string pid_record(::pid_t pid) {
  return std::to_string(static_cast<long long>(pid)) + "\n";
}

/// Pid recorded in a lock file; nullopt for a missing, empty, or garbled
/// record (a holder that crashed between create and write looks garbled —
/// and is, by definition, dead).
std::optional<::pid_t> read_lock_pid(const std::string& path) {
  const auto contents = read_file(path);
  if (!contents.has_value()) {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const long long pid = std::strtoll(contents->c_str(), &end, 10);
  if (end == contents->c_str() || pid <= 0) {
    return std::nullopt;
  }
  return static_cast<::pid_t>(pid);
}

}  // namespace

PidLockFile::PidLockFile(std::string path, std::string what)
    : path_(std::move(path)) {
  const ::pid_t self = ::getpid();
  const std::string record = pid_record(self);
  for (int attempt = 0; attempt < 4; ++attempt) {
    if (create_exclusive(path_, record)) {
      return;  // clean acquisition
    }
    const std::optional<::pid_t> holder = read_lock_pid(path_);
    if (holder.has_value() && pid_alive(*holder)) {
      throw IoError(what + " is locked by live pid " +
                    std::to_string(static_cast<long long>(*holder)) + " ('" +
                    path_ + "'); refusing to run two sweeps against it");
    }
    // Stale (dead pid or unreadable record): take over by renaming a fresh
    // lock on top, then confirm by read-back that our rename won. A loser
    // of the takeover race loops and now sees a live holder.
    write_file_atomic(path_, record,
                      std::to_string(static_cast<long long>(self)));
    const std::optional<::pid_t> now = read_lock_pid(path_);
    if (now.has_value() && *now == self) {
      return;
    }
  }
  fail(path_, "could not acquire after repeated stale-lock takeovers");
}

PidLockFile::~PidLockFile() {
  // Only release a lock that is still ours: if a peer broke the lock as
  // stale (it cannot have, while we live, but belt-and-braces) we must not
  // unlink their lock.
  const std::optional<::pid_t> holder = read_lock_pid(path_);
  if (holder.has_value() && *holder == ::getpid()) {
    ::unlink(path_.c_str());
  }
}

}  // namespace vmcons::util
