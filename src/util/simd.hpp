// Lane-batching primitives for the analytic hot path.
//
// The Erlang-B recurrence E_n = rho E_{n-1} / (n + rho E_{n-1}) is a serial
// dependence chain through one double divide per step: evaluated scalar, the
// core's divider sits idle for most of each ~15-cycle latency. The divider
// is pipelined, though, so W *independent* chains interleaved in lockstep
// run at divide throughput instead of divide latency — and the lockstep
// inner loop over lanes is exactly the shape the compiler's SLP/loop
// vectorizer turns into packed divides. This header provides the lane
// plumbing: compile-time width detection and a fixed-width value pack whose
// operations are plain per-element loops, so every target gets a correct
// scalar twin and SIMD-capable targets get packed code from the
// auto-vectorizer. No intrinsics anywhere; this is standard C++ that
// happens to vectorize.
//
// Width policy: kNativeDoubleLanes is the number of doubles per SIMD
// register the compiler is allowed to use for this translation unit
// (detected from the target macros; 1 on targets with no vector unit).
// kRecurrenceLanes is the number of independent recurrence chains the
// multi-lane Erlang kernels advance together: at least 8 regardless of
// register width, because hiding the divide latency needs more chains than
// one register holds (8 chains on SSE2 = 4 packed divides in flight).
//
// Bit-identity: Pack operations are per-lane and never reorder or fuse
// across lanes, so a value computed in lane i is bit-identical to the same
// scalar operation sequence — lanes are independent computations that
// merely share instructions. Anything that would change results (reordered
// reductions, FMA contraction, reciprocal approximations) is out of scope
// here on purpose.
#pragma once

#include <cstddef>

namespace vmcons::util::simd {

/// Doubles per SIMD register the target can pack (1 = scalar fallback).
#if defined(__AVX512F__)
inline constexpr std::size_t kNativeDoubleLanes = 8;
#elif defined(__AVX__)
inline constexpr std::size_t kNativeDoubleLanes = 4;
#elif defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64) || \
    defined(__aarch64__) || defined(__ARM_NEON) || defined(__VSX__) || \
    defined(__wasm_simd128__)
inline constexpr std::size_t kNativeDoubleLanes = 2;
#else
inline constexpr std::size_t kNativeDoubleLanes = 1;
#endif

/// Independent recurrence chains the multi-lane Erlang walk advances in
/// lockstep. A multiple of the register width, and at least 8 so the
/// divider pipeline stays full even on 2-lane targets.
inline constexpr std::size_t kRecurrenceLanes =
    kNativeDoubleLanes < 8 ? 8 : kNativeDoubleLanes;

/// Fixed-width pack of doubles with per-element (never cross-lane)
/// arithmetic. All operations are plain loops: the scalar twin on targets
/// without SIMD, packed instructions wherever the auto-vectorizer applies.
template <std::size_t W>
struct Pack {
  static_assert(W > 0, "a pack needs at least one lane");
  alignas(W * sizeof(double) <= 64 ? W * sizeof(double) : 64) double v[W];

  static Pack broadcast(double x) {
    Pack p;
    for (std::size_t l = 0; l < W; ++l) {
      p.v[l] = x;
    }
    return p;
  }
  static Pack load(const double* src) {
    Pack p;
    for (std::size_t l = 0; l < W; ++l) {
      p.v[l] = src[l];
    }
    return p;
  }
  void store(double* dst) const {
    for (std::size_t l = 0; l < W; ++l) {
      dst[l] = v[l];
    }
  }

  friend Pack operator+(const Pack& a, const Pack& b) {
    Pack r;
    for (std::size_t l = 0; l < W; ++l) {
      r.v[l] = a.v[l] + b.v[l];
    }
    return r;
  }
  friend Pack operator-(const Pack& a, const Pack& b) {
    Pack r;
    for (std::size_t l = 0; l < W; ++l) {
      r.v[l] = a.v[l] - b.v[l];
    }
    return r;
  }
  friend Pack operator*(const Pack& a, const Pack& b) {
    Pack r;
    for (std::size_t l = 0; l < W; ++l) {
      r.v[l] = a.v[l] * b.v[l];
    }
    return r;
  }
  friend Pack operator/(const Pack& a, const Pack& b) {
    Pack r;
    for (std::size_t l = 0; l < W; ++l) {
      r.v[l] = a.v[l] / b.v[l];
    }
    return r;
  }
};

}  // namespace vmcons::util::simd
