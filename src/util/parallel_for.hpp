// Chunked parallel loop over an index range.
//
// parallel_for(n, fn) invokes fn(i) for every i in [0, n), distributing
// contiguous chunks over the shared thread pool. Exceptions thrown by any
// iteration are rethrown (first one wins) after all chunks finish, so the
// caller never observes partially-joined work. If enqueueing a chunk itself
// throws (pool allocation failure), already-submitted chunks are aborted
// cooperatively and joined before the dispatch error is rethrown — futures
// from packaged tasks do not block on destruction, so abandoning them would
// leave queued chunks referencing the dying fn and locals.
//
// `grain` is the number of consecutive indices handed to one pool task:
// 0 (the default) auto-chunks to about count / (4 * workers) so each worker
// sees ~4 chunks, which balances heterogeneous iteration costs without
// swamping the queue; an explicit grain caps dispatch overhead for tiny
// per-item bodies (per-replication postprocessing, per-cell reductions)
// where even 4 chunks per worker would underfill each task.
//
// `control` (optional) makes the loop cooperatively stoppable: dispatch
// stops submitting new chunks once control->stop_requested(), every not-yet
// -started chunk returns without running, and the serial inline path checks
// between iterations — so cancellation latency is bounded by one chunk of
// work. parallel_for itself does not throw on a stop (it simply completes
// early, with all started chunks finished and joined); the caller inspects
// the RunControl to decide whether to raise. parallel_map cannot represent
// a partial result, so it throws CancelledError / DeadlineExceededError
// when a stop left slots unfilled.
//
// Determinism contract: fn must derive any randomness from the index i (for
// example via make_stream(seed, i)), never from thread identity; then output
// is independent of the worker count.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <future>
#include <optional>
#include <utility>
#include <vector>

#include "util/run_control.hpp"
#include "util/thread_pool.hpp"

namespace vmcons {

template <typename Fn>
void parallel_for(std::size_t count, Fn&& fn, ThreadPool& pool = ThreadPool::shared(),
                  std::size_t grain = 0, const RunControl* control = nullptr) {
  if (count == 0) {
    return;
  }
  const std::size_t workers = std::max<std::size_t>(1, pool.size());
  // A nested call from a pool worker must not block on futures: with every
  // worker parked in future.get() the queued chunks would never run, so the
  // nested loop executes inline on the calling worker instead.
  if (count == 1 || workers == 1 || ThreadPool::on_worker_thread() ||
      grain >= count) {
    for (std::size_t i = 0; i < count; ++i) {
      if (control != nullptr && control->stop_requested()) {
        return;
      }
      fn(i);
    }
    return;
  }
  // Auto grain: four chunks per worker balances load for heterogeneous
  // iteration costs without swamping the queue.
  const std::size_t auto_chunks = std::min(count, workers * 4);
  const std::size_t chunk_size =
      grain > 0 ? grain : (count + auto_chunks - 1) / auto_chunks;
  const std::size_t chunks = (count + chunk_size - 1) / chunk_size;

  // Flipped when dispatch fails, so chunks already queued behind the failure
  // skip their work and drain fast; stack lifetime is safe because every
  // path below joins all submitted futures before unwinding.
  std::atomic<bool> abort{false};
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  std::exception_ptr dispatch_error;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk_size;
    if (begin >= count) {
      break;
    }
    if (control != nullptr && control->stop_requested()) {
      break;  // stop dispatching; already-queued chunks self-skip below
    }
    const std::size_t end = std::min(count, begin + chunk_size);
    try {
      futures.push_back(pool.submit([begin, end, &fn, &abort, control] {
        if (abort.load(std::memory_order_relaxed) ||
            (control != nullptr && control->stop_requested())) {
          return;
        }
        for (std::size_t i = begin; i < end; ++i) {
          fn(i);
        }
      }));
    } catch (...) {
      abort.store(true, std::memory_order_relaxed);
      dispatch_error = std::current_exception();
      break;
    }
  }

  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) {
        first_error = std::current_exception();
      }
    }
  }
  // A chunk's own error is more informative than the (likely allocation)
  // dispatch failure, so it wins when both occurred.
  if (first_error) {
    std::rethrow_exception(first_error);
  }
  if (dispatch_error) {
    std::rethrow_exception(dispatch_error);
  }
}

/// Maps fn over [0, n) in parallel, collecting results in index order.
/// Results need not be default-constructible: each slot is materialized by
/// move from fn's return value, then unwrapped in index order. `grain` is
/// forwarded to parallel_for (0 = auto-chunking). A stop requested through
/// `control` throws (a partial map has no honest representation).
template <typename Fn>
auto parallel_map(std::size_t count, Fn&& fn, ThreadPool& pool = ThreadPool::shared(),
                  std::size_t grain = 0, const RunControl* control = nullptr)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using Result = decltype(fn(std::size_t{0}));
  std::vector<std::optional<Result>> slots(count);
  parallel_for(
      count, [&](std::size_t i) { slots[i].emplace(fn(i)); }, pool, grain,
      control);
  std::vector<Result> results;
  results.reserve(count);
  for (auto& slot : slots) {
    if (!slot.has_value()) {
      // Only a stop can leave a hole (chunk errors rethrow above).
      VMCONS_ASSERT(control != nullptr);
      control->raise_if_stopped("parallel_map");
      VMCONS_ASSERT(false);  // stop cleared between the hole and the check
    }
    results.push_back(std::move(*slot));
  }
  return results;
}

}  // namespace vmcons
