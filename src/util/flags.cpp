#include "util/flags.hpp"

#include <cstdlib>

#include "util/error.hpp"

namespace vmcons {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positionals_.push_back(std::move(token));
      continue;
    }
    token.erase(0, 2);
    const auto equals = token.find('=');
    if (equals != std::string::npos) {
      values_[token.substr(0, equals)] = token.substr(equals + 1);
      continue;
    }
    // "--name value" if the next token is not itself a flag; else boolean.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[token] = argv[++i];
    } else {
      values_[token] = "true";
    }
  }
}

bool Flags::has(const std::string& name) const {
  queried_[name] = true;
  return values_.count(name) != 0;
}

std::string Flags::get_string(const std::string& name, const std::string& fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

long long Flags::get_int(const std::string& name, long long fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  char* end = nullptr;
  const long long value = std::strtoll(it->second.c_str(), &end, 10);
  VMCONS_REQUIRE(end != nullptr && *end == '\0',
                 "flag --" + name + " expects an integer, got '" + it->second + "'");
  return value;
}

double Flags::get_double(const std::string& name, double fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  VMCONS_REQUIRE(end != nullptr && *end == '\0',
                 "flag --" + name + " expects a number, got '" + it->second + "'");
  return value;
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  const std::string& text = it->second;
  if (text == "true" || text == "1" || text == "yes" || text == "on") {
    return true;
  }
  if (text == "false" || text == "0" || text == "no" || text == "off") {
    return false;
  }
  throw InvalidArgument("flag --" + name + " expects a boolean, got '" + text + "'");
}

std::vector<std::string> Flags::unknown_flags() const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : values_) {
    (void)value;
    if (queried_.count(name) == 0) {
      unknown.push_back(name);
    }
  }
  return unknown;
}

}  // namespace vmcons
