// Deterministic random-number streams for parallel simulation.
//
// Every simulation replication and every parallel sweep task gets its own
// stream derived from a (seed, stream-id) pair via SplitMix64, so results are
// bit-identical regardless of how many worker threads execute the sweep.
// The generator itself is xoshiro256**, which is fast, has 2^256-1 period,
// and passes BigCrush; we implement it locally to avoid any libc variance.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace vmcons {

/// SplitMix64 step: the canonical seed-sequence generator.
/// Used to expand a single 64-bit seed into independent stream states.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** pseudo-random generator with explicit, value-type state.
///
/// Satisfies UniformRandomBitGenerator, so it composes with <random>
/// distributions, but the library's own distributions (below) are preferred
/// because their output is identical across standard libraries.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the stream from (seed, stream). Distinct streams are statistically
  /// independent: each state word comes from a separate SplitMix64 chain.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL,
               std::uint64_t stream = 0) noexcept;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit draw.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection to avoid
  /// modulo bias.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Exponential variate with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate) noexcept;

  /// Poisson variate with the given mean. Uses inversion for small means and
  /// the PTRS transformed-rejection method for large means.
  std::uint64_t poisson(double mean) noexcept;

  /// Standard normal variate (Box-Muller, both values used).
  double normal() noexcept;

  /// Normal variate with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Gamma(shape, scale) variate via Marsaglia-Tsang.
  double gamma(double shape, double scale) noexcept;

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) noexcept;

  /// Zipf-distributed rank in [0, n) with exponent s >= 0 (s = 0 is uniform).
  /// Used by the SPECweb-like file-set generator for file popularity.
  std::uint64_t zipf(std::uint64_t n, double s) noexcept;

  /// Draws an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_index(const std::vector<double>& weights) noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Factory for per-task streams: stream k of a sweep seeded with `seed`.
inline Rng make_stream(std::uint64_t seed, std::uint64_t stream) {
  return Rng(seed, stream);
}

}  // namespace vmcons
