// Cross-process file locking built on the util::fs crash-consistent layer.
//
// The multi-process sweep driver (core/sharded_sweep.hpp) and the streaming
// sweep's checkpoint manifest coordinate through the filesystem, because
// worker processes share nothing else. Two POSIX guarantees carry all of
// it:
//
//   * open(O_CREAT | O_EXCL) is atomic — exactly one of N racing processes
//     creates the file. That arbitration is the claim primitive
//     (fs::create_exclusive_file).
//   * rename(2) within a directory is atomic — a reader sees either the old
//     file or the complete new file, never a partial write. fs::commit_file
//     adds the fsyncs that also make it durable, and renaming a fresh
//     record onto an existing one is the compare-and-swap primitive (the
//     caller re-reads after the rename to learn whether it won).
//
// PidLockFile builds a process-exclusive advisory lock from these. The lock
// record carries the owner's pid *and hostname*, because the kill(pid, 0)
// liveness probe is only meaningful between processes on one host: on a
// shared filesystem (NFS ledger directories are the ROADMAP's multi-host
// target) a remote holder's pid number says nothing about the remote
// process. The staleness rule is therefore host-portable:
//
//   * record from this host (or a legacy pid-only record): stale iff the
//     pid is dead — the fast path, no waiting;
//   * record from another host: stale iff the lock file's age exceeds the
//     lease — the only cross-host liveness signal is time. Long-running
//     holders keep their lock fresh by calling refresh() at progress
//     points (StreamingSweep touches it per committed shard).
//
// Legacy pid-only records (no hostname) are read as local, so locks written
// by older builds keep working across an upgrade.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include <sys/types.h>

namespace vmcons::util {

/// True iff a process with this pid exists right now (kill(pid, 0)).
/// EPERM counts as alive: the process exists, we just may not signal it.
bool pid_alive(::pid_t pid) noexcept;

/// This host's name (gethostname, cached; "localhost" if the call fails),
/// sanitized to the filename-safe charset claim records use.
const std::string& local_hostname();

/// Whole file as a string; nullopt when the file does not exist. Throws
/// IoError for any other read failure. Delegates to util::fs::read_file at
/// the generic fs.read fault site.
std::optional<std::string> read_file(const std::string& path);

/// Advisory exclusive lock: a file holding "<pid> <hostname>".
///
/// Acquisition order: O_EXCL create; on EEXIST read the holder's record —
/// a live holder fails the acquisition loudly (IoError naming path, pid,
/// and host), a stale holder (dead local pid, lease-expired remote, or
/// unreadable record) is broken by atomically committing a fresh lock over
/// it, then re-reading to confirm we won the takeover race. The destructor
/// releases by unlinking, but only while the file still names our pid, so
/// releasing never destroys a lock someone else legitimately took over.
class PidLockFile {
 public:
  /// Acquires or throws IoError. `what` names the protected resource in
  /// error messages ("checkpoint manifest", "claim ledger"). `lease` is the
  /// cross-host staleness horizon: a remote holder that has not refreshed
  /// the lock within it is treated as dead.
  PidLockFile(std::string path, std::string what,
              std::chrono::milliseconds lease = std::chrono::minutes(2));
  ~PidLockFile();

  PidLockFile(const PidLockFile&) = delete;
  PidLockFile& operator=(const PidLockFile&) = delete;

  const std::string& path() const noexcept { return path_; }

  /// Bumps the lock file's mtime so remote hosts see a live holder. Call at
  /// natural progress points; failures are swallowed (a missed touch only
  /// narrows the remote staleness margin, it cannot corrupt the lock).
  void refresh() const noexcept;

 private:
  std::string path_;
};

}  // namespace vmcons::util
