// Cross-process file locking and atomic-commit primitives.
//
// The multi-process sweep driver (core/sharded_sweep.hpp) and the streaming
// sweep's checkpoint manifest coordinate through the filesystem, because
// worker processes share nothing else. Two POSIX guarantees carry all of
// it on one machine:
//
//   * open(O_CREAT | O_EXCL) is atomic — exactly one of N racing processes
//     creates the file. That arbitration is the claim primitive.
//   * rename(2) within a directory is atomic — a reader sees either the old
//     file or the complete new file, never a partial write. Writing to a
//     temporary name and renaming onto the final name is the commit
//     primitive (write_file_atomic), and renaming a fresh record onto an
//     existing one is the compare-and-swap primitive (the caller re-reads
//     after the rename to learn whether it won).
//
// PidLockFile builds a process-exclusive advisory lock from these: the lock
// file holds the owner's pid, acquisition is O_EXCL, and a lock whose pid no
// longer exists (stale: its owner crashed) is broken by renaming a fresh
// lock over it and verifying ownership by read-back. Liveness checks use
// kill(pid, 0), so the lock is meaningful only between processes on one
// host — which is exactly the sharded driver's domain (the store format
// itself is host-endian and single-machine).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include <sys/types.h>

namespace vmcons::util {

/// True iff a process with this pid exists right now (kill(pid, 0)).
/// EPERM counts as alive: the process exists, we just may not signal it.
bool pid_alive(::pid_t pid) noexcept;

/// Creates `path` with O_CREAT|O_EXCL and writes `contents`. Returns false
/// (touching nothing) when the file already exists; throws IoError on any
/// other failure. The create is atomic, but the write is not — readers of
/// freshly claimed files must tolerate a not-yet-written record.
bool create_exclusive(const std::string& path, const std::string& contents);

/// Writes `contents` to `path` via a temporary file in the same directory
/// plus rename, so concurrent readers see the old contents or the new
/// contents, never a prefix. The temporary name embeds `tag` (pid, token)
/// to keep concurrent writers from colliding on the scratch file.
void write_file_atomic(const std::string& path, const std::string& contents,
                       const std::string& tag);

/// Whole file as a string; nullopt when the file does not exist. Throws
/// IoError for any other read failure.
std::optional<std::string> read_file(const std::string& path);

/// Advisory exclusive lock: a file holding the owner's pid.
///
/// Acquisition order: O_EXCL create; on EEXIST read the holder's pid — a
/// live holder fails the acquisition loudly (IoError naming path and pid),
/// a dead or unreadable holder is *stale* and is broken by atomically
/// renaming a fresh lock (our pid) over it, then re-reading to confirm we
/// won the takeover race. The destructor releases by unlinking, but only
/// while the file still names our pid, so releasing never destroys a lock
/// someone else legitimately took over.
class PidLockFile {
 public:
  /// Acquires or throws IoError. `what` names the protected resource in
  /// error messages ("checkpoint manifest", "claim ledger").
  PidLockFile(std::string path, std::string what);
  ~PidLockFile();

  PidLockFile(const PidLockFile&) = delete;
  PidLockFile& operator=(const PidLockFile&) = delete;

  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

}  // namespace vmcons::util
