#include "util/csv.hpp"

#include <algorithm>
#include <cstdio>

#include "util/error.hpp"

namespace vmcons {
namespace {

bool needs_quoting(const std::string& text) {
  return text.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quote(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    if (c == '"') {
      out.push_back('"');
    }
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

}  // namespace

std::string csv_format_cell(const CsvCell& cell) {
  if (const auto* text = std::get_if<std::string>(&cell)) {
    return needs_quoting(*text) ? quote(*text) : *text;
  }
  if (const auto* integer = std::get_if<long long>(&cell)) {
    return std::to_string(*integer);
  }
  return format_double(std::get<double>(cell));
}

std::vector<std::string> csv_parse_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  if (in_quotes) {
    // A quoted field that never closes means the line was cut mid-record
    // (a truncated checkpoint manifest, a partial download). Returning the
    // partial field would let a resume trust garbage, so fail loudly.
    throw IoError("CSV line ends inside an unterminated quoted field: " +
                  line.substr(0, std::min<std::size_t>(line.size(), 120)));
  }
  fields.push_back(std::move(current));
  return fields;
}

void CsvWriter::continue_rows(std::size_t columns) {
  VMCONS_REQUIRE(!header_written_, "CSV header already written");
  VMCONS_REQUIRE(columns > 0, "CSV header must have at least one column");
  columns_ = columns;
  header_written_ = true;
}

void CsvWriter::emit(const std::string& line) {
  if (file_ != nullptr) {
    const util::fs::Status status =
        util::fs::write_all(*file_, line.data(), line.size(), site_);
    if (!status.ok()) {
      throw IoError("CSV file '" + file_->path() + "': row write failed after " +
                    std::to_string(status.bytes) + " of " +
                    std::to_string(line.size()) + " bytes: " + status.message());
    }
    return;
  }
  *out_ << line;
}

void CsvWriter::commit() {
  VMCONS_REQUIRE(file_ != nullptr,
                 "CsvWriter::commit requires the durable (fs-backed) mode");
  const util::fs::Status status = util::fs::fsync_file(*file_, site_);
  if (!status.ok()) {
    throw IoError("CSV file '" + file_->path() +
                  "': fsync failed: " + status.message());
  }
}

void CsvWriter::header(const std::vector<std::string>& columns) {
  VMCONS_REQUIRE(!header_written_, "CSV header already written");
  VMCONS_REQUIRE(!columns.empty(), "CSV header must have at least one column");
  columns_ = columns.size();
  header_written_ = true;
  std::string line;
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i != 0) {
      line.push_back(',');
    }
    line += csv_format_cell(columns[i]);
  }
  line.push_back('\n');
  emit(line);
}

void CsvWriter::row(const std::vector<CsvCell>& cells) {
  VMCONS_REQUIRE(header_written_, "CSV header must be written before rows");
  VMCONS_REQUIRE(cells.size() == columns_, "CSV row width differs from header");
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) {
      line.push_back(',');
    }
    line += csv_format_cell(cells[i]);
  }
  line.push_back('\n');
  emit(line);
  ++rows_;
}

std::size_t CsvDocument::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) {
      return i;
    }
  }
  throw InvalidArgument("CSV column not found: " + name);
}

CsvDocument csv_parse(const std::string& text) {
  // Record-level parse: a quoted field may span lines (RFC 4180), so the
  // state machine walks characters, not getline() lines. Outside quotes a
  // bare newline (or CRLF) ends the record; inside quotes every character —
  // newlines included — belongs to the field verbatim.
  CsvDocument document;
  bool have_header = false;
  std::vector<std::string> record;
  std::string current;
  bool in_quotes = false;

  const auto end_record = [&] {
    record.push_back(std::move(current));
    current.clear();
    if (record.size() == 1 && record.front().empty()) {
      record.clear();  // blank line, skipped as before
      return;
    }
    if (!have_header) {
      document.header = std::move(record);
      have_header = true;
    } else {
      document.rows.push_back(std::move(record));
    }
    record.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      record.push_back(std::move(current));
      current.clear();
    } else if (c == '\n') {
      end_record();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  if (in_quotes) {
    throw IoError(
        "CSV text ends inside an unterminated quoted field (truncated "
        "input?)");
  }
  if (!current.empty() || !record.empty()) {
    end_record();  // final record without a trailing newline
  }
  return document;
}

}  // namespace vmcons
