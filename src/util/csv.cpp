#include "util/csv.hpp"

#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace vmcons {
namespace {

bool needs_quoting(const std::string& text) {
  return text.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quote(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    if (c == '"') {
      out.push_back('"');
    }
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

}  // namespace

std::string csv_format_cell(const CsvCell& cell) {
  if (const auto* text = std::get_if<std::string>(&cell)) {
    return needs_quoting(*text) ? quote(*text) : *text;
  }
  if (const auto* integer = std::get_if<long long>(&cell)) {
    return std::to_string(*integer);
  }
  return format_double(std::get<double>(cell));
}

std::vector<std::string> csv_parse_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

void CsvWriter::header(const std::vector<std::string>& columns) {
  VMCONS_REQUIRE(!header_written_, "CSV header already written");
  VMCONS_REQUIRE(!columns.empty(), "CSV header must have at least one column");
  columns_ = columns.size();
  header_written_ = true;
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i != 0) {
      out_ << ',';
    }
    out_ << csv_format_cell(columns[i]);
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<CsvCell>& cells) {
  VMCONS_REQUIRE(header_written_, "CSV header must be written before rows");
  VMCONS_REQUIRE(cells.size() == columns_, "CSV row width differs from header");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) {
      out_ << ',';
    }
    out_ << csv_format_cell(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

std::size_t CsvDocument::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) {
      return i;
    }
  }
  throw InvalidArgument("CSV column not found: " + name);
}

CsvDocument csv_parse(const std::string& text) {
  CsvDocument document;
  std::istringstream stream(text);
  std::string line;
  bool first = true;
  while (std::getline(stream, line)) {
    if (line.empty()) {
      continue;
    }
    auto fields = csv_parse_line(line);
    if (first) {
      document.header = std::move(fields);
      first = false;
    } else {
      document.rows.push_back(std::move(fields));
    }
  }
  return document;
}

}  // namespace vmcons
