// Tiny command-line flag parser for bench and example binaries.
//
// Supports --name=value and --name value forms plus boolean --name. Unknown
// flags raise InvalidArgument so typos fail fast instead of silently running
// the default experiment.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace vmcons {

class Flags {
 public:
  /// Parses argv; flags start with "--", everything else is a positional.
  Flags(int argc, const char* const* argv);

  /// True if --name appeared (with or without a value).
  bool has(const std::string& name) const;

  std::string get_string(const std::string& name, const std::string& fallback) const;
  long long get_int(const std::string& name, long long fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positionals() const noexcept { return positionals_; }

  /// Names seen during parsing but never queried — call after all get_* calls
  /// to reject typos (each get_* marks its flag as known).
  std::vector<std::string> unknown_flags() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positionals_;
};

}  // namespace vmcons
