#include "util/fault_inject.hpp"

#include <array>
#include <thread>
#include <unordered_map>

#include "util/error.hpp"

namespace vmcons::util {
namespace {

constexpr std::array<std::string_view, 7> kKnownSites = {
    fault_sites::kErlangEval,
    fault_sites::kStaffingInverse,
    fault_sites::kBatchShard,
    fault_sites::kBatchCell,
    fault_sites::kSweepShard,
    fault_sites::kDriverClaim,
    fault_sites::kDriverShard,
};

/// FNV-1a over the site name; stable across runs and platforms.
std::uint64_t site_hash(std::string_view site) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform draw in [0, 1), a pure function of (seed, site, index, salt) —
/// deliberately free of any thread or time input so fault runs replay
/// bit-identically across worker counts.
double draw(std::uint64_t seed, std::uint64_t site, std::uint64_t index,
            std::uint64_t salt) noexcept {
  const std::uint64_t h = mix64(seed ^ mix64(site ^ mix64(index ^ salt)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

constexpr std::uint64_t kErrorSalt = 0x45;
constexpr std::uint64_t kDelaySalt = 0xD3;

}  // namespace

/// Immutable arming snapshot, swapped atomically so check() never locks.
struct FaultInjector::Config {
  std::uint64_t seed = 2009;
  std::unordered_map<std::uint64_t, SiteConfig> sites;  // key: site_hash
};

std::atomic<bool> FaultInjector::g_enabled{false};

FaultInjector::FaultInjector() {
  config_.store(std::make_shared<const Config>());
}

FaultInjector::~FaultInjector() = default;

std::shared_ptr<const FaultInjector::Config> FaultInjector::load() const {
  return config_.load(std::memory_order_acquire);
}

void FaultInjector::publish_enabled() const {
  if (this == &global()) {
    g_enabled.store(!load()->sites.empty(), std::memory_order_relaxed);
  }
}

void FaultInjector::arm(std::string_view site, SiteConfig config) {
  bool known = false;
  for (const std::string_view candidate : kKnownSites) {
    known = known || candidate == site;
  }
  VMCONS_REQUIRE(known, "unknown fault-injection site '" + std::string(site) +
                            "' (see FaultInjector::known_sites())");
  VMCONS_REQUIRE(config.error_rate >= 0.0 && config.error_rate <= 1.0 &&
                     config.delay_rate >= 0.0 && config.delay_rate <= 1.0,
                 "fault-injection rates must be in [0, 1]");
  auto next = std::make_shared<Config>(*load());
  next->sites[site_hash(site)] = config;
  config_.store(std::shared_ptr<const Config>(std::move(next)),
                std::memory_order_release);
  publish_enabled();
}

void FaultInjector::disarm_all() {
  auto next = std::make_shared<Config>();
  next->seed = load()->seed;
  config_.store(std::shared_ptr<const Config>(std::move(next)),
                std::memory_order_release);
  publish_enabled();
}

void FaultInjector::set_seed(std::uint64_t seed) {
  auto next = std::make_shared<Config>(*load());
  next->seed = seed;
  config_.store(std::shared_ptr<const Config>(std::move(next)),
                std::memory_order_release);
}

std::uint64_t FaultInjector::seed() const { return load()->seed; }

void FaultInjector::check(std::string_view site, std::uint64_t index) const {
  const auto config = load();
  if (config->sites.empty()) {
    return;
  }
  const std::uint64_t hash = site_hash(site);
  const auto it = config->sites.find(hash);
  if (it == config->sites.end()) {
    return;
  }
  const SiteConfig& armed = it->second;
  if (armed.delay_rate > 0.0 &&
      draw(config->seed, hash, index, kDelaySalt) < armed.delay_rate) {
    std::this_thread::sleep_for(armed.delay);
  }
  if (armed.error_rate > 0.0 &&
      draw(config->seed, hash, index, kErrorSalt) < armed.error_rate) {
    throw NumericError("injected fault at site '" + std::string(site) +
                           "', index " + std::to_string(index) + " (seed " +
                           std::to_string(config->seed) + ")",
                       ErrorCode::kFaultInjected);
  }
}

bool FaultInjector::would_fail(std::string_view site,
                               std::uint64_t index) const {
  const auto config = load();
  const std::uint64_t hash = site_hash(site);
  const auto it = config->sites.find(hash);
  if (it == config->sites.end()) {
    return false;
  }
  return it->second.error_rate > 0.0 &&
         draw(config->seed, hash, index, kErrorSalt) < it->second.error_rate;
}

std::span<const std::string_view> FaultInjector::known_sites() noexcept {
  return kKnownSites;
}

FaultInjector& FaultInjector::global() {
  static FaultInjector injector;
  return injector;
}

ScopedFaults::ScopedFaults() : saved_seed_(FaultInjector::global().seed()) {}

ScopedFaults::~ScopedFaults() {
  FaultInjector& injector = FaultInjector::global();
  injector.disarm_all();
  injector.set_seed(saved_seed_);
}

}  // namespace vmcons::util
