#include "util/thread_pool.hpp"

#include <cstdlib>

namespace vmcons {
namespace {

/// Set for the lifetime of every pool worker thread; read by
/// ThreadPool::on_worker_thread() to detect nested parallelism.
thread_local bool t_on_pool_worker = false;

}  // namespace

bool ThreadPool::on_worker_thread() noexcept { return t_on_pool_worker; }

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) {
      threads = 1;
    }
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  available_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::worker_loop() {
  t_on_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::shared() {
  // VMCONS_THREADS pins the shared pool's size (useful for determinism
  // experiments and for benchmarking scaling); unset/invalid/0 falls back
  // to hardware concurrency.
  static ThreadPool pool([] {
    std::size_t threads = 0;
    if (const char* env = std::getenv("VMCONS_THREADS")) {
      char* end = nullptr;
      const unsigned long value = std::strtoul(env, &end, 10);
      if (end != nullptr && *end == '\0') {
        threads = static_cast<std::size_t>(value);
      }
    }
    return threads;
  }());
  return pool;
}

}  // namespace vmcons
