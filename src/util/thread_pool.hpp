// Fixed-size worker pool used by parallel_for and the replication runner.
//
// Design notes (per the HPC guides): explicit parallelism, no detached
// threads, deterministic shutdown via RAII. Tasks are type-erased
// std::function<void()>; the queue is a simple mutex-guarded deque, which is
// ample because every task in this library is coarse (a full simulation
// replication or one sweep point).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace vmcons {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  /// Number of worker threads.
  std::size_t size() const noexcept { return workers_.size(); }

  /// Tasks enqueued but not yet claimed by a worker. Zero after every
  /// parallel_for returns (it joins all submitted chunks, even aborted
  /// ones) — tests use this to assert a cancelled batch leaked nothing.
  std::size_t queued() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  /// Enqueues a task and returns a future for its completion/exception.
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using Result = std::invoke_result_t<F>;
    auto packaged = std::make_shared<std::packaged_task<Result()>>(
        std::forward<F>(task));
    std::future<Result> future = packaged->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([packaged] { (*packaged)(); });
    }
    available_.notify_one();
    return future;
  }

  /// Returns the process-wide default pool (created on first use). Its size
  /// is hardware concurrency, overridable via the VMCONS_THREADS environment
  /// variable (read once, at first use; unset/0/unparsable falls back to
  /// hardware concurrency). Pinning the size only changes wall time, never
  /// results — see "Reproducible parallelism" in CONTRIBUTING.md.
  static ThreadPool& shared();

  /// True when the calling thread is a worker of *any* ThreadPool (set via
  /// a thread-local flag in worker_loop). parallel_for uses this to run
  /// nested loops inline: a worker that blocked on futures for chunks
  /// queued behind it would deadlock the pool.
  static bool on_worker_thread() noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable available_;
  bool stopping_ = false;
};

}  // namespace vmcons
