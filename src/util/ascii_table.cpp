#include "util/ascii_table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace vmcons {
namespace {

bool looks_numeric(const std::string& cell) {
  if (cell.empty()) {
    return false;
  }
  std::size_t i = 0;
  if (cell[0] == '-' || cell[0] == '+') {
    i = 1;
  }
  bool digit_seen = false;
  for (; i < cell.size(); ++i) {
    const char c = cell[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != 'e' && c != 'E' && c != '-' && c != '+' &&
               c != '%' && c != 'x') {
      return false;
    }
  }
  return digit_seen;
}

}  // namespace

void AsciiTable::set_header(std::vector<std::string> columns) {
  VMCONS_REQUIRE(!columns.empty(), "table header must be non-empty");
  header_ = std::move(columns);
  rows_.clear();
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  VMCONS_REQUIRE(cells.size() == header_.size(),
                 "table row width differs from header");
  rows_.push_back(std::move(cells));
}

void AsciiTable::add_numeric_row(const std::string& label,
                                 const std::vector<double>& values,
                                 int precision) {
  VMCONS_REQUIRE(values.size() + 1 == header_.size(),
                 "numeric row width differs from header");
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (const double value : values) {
    cells.push_back(format(value, precision));
  }
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::format(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

void AsciiTable::print(std::ostream& out, const std::string& title) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto rule = [&] {
    out << '+';
    for (const std::size_t width : widths) {
      out << std::string(width + 2, '-') << '+';
    }
    out << '\n';
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::string& cell = cells[c];
      const std::size_t pad = widths[c] - cell.size();
      if (looks_numeric(cell)) {
        out << ' ' << std::string(pad, ' ') << cell << ' ';
      } else {
        out << ' ' << cell << std::string(pad, ' ') << ' ';
      }
      out << '|';
    }
    out << '\n';
  };

  if (!title.empty()) {
    out << title << '\n';
  }
  rule();
  emit(header_);
  rule();
  for (const auto& row : rows_) {
    emit(row);
  }
  rule();
}

std::string AsciiTable::to_string(const std::string& title) const {
  std::ostringstream out;
  print(out, title);
  return out.str();
}

void print_kv(std::ostream& out, const std::string& key, const std::string& value) {
  out << "  " << key << ": " << value << '\n';
}

void print_kv(std::ostream& out, const std::string& key, double value, int precision) {
  out << "  " << key << ": " << AsciiTable::format(value, precision) << '\n';
}

}  // namespace vmcons
