#include "util/metrics.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace vmcons::metrics {

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Timer& Registry::timer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = timers_[name];
  if (!slot) {
    slot = std::make_unique<Timer>();
  }
  return *slot;
}

std::vector<Registry::Row> Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Row> rows;
  rows.reserve(counters_.size() + 2 * timers_.size());
  for (const auto& [name, counter] : counters_) {
    rows.push_back({name, static_cast<double>(counter->value())});
  }
  for (const auto& [name, timer] : timers_) {
    rows.push_back({name + ".ms", timer->total_millis()});
    rows.push_back({name + ".calls", static_cast<double>(timer->count())});
  }
  // std::map iterates sorted, but counter and timer rows interleave.
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.name < b.name; });
  return rows;
}

void Registry::dump(std::ostream& out) const {
  for (const auto& row : snapshot()) {
    out << row.name << " = " << std::setprecision(6) << row.value << '\n';
  }
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  // In place, never reallocated: references handed out stay valid.
  for (auto& [name, counter] : counters_) {
    counter->reset();
  }
  for (auto& [name, timer] : timers_) {
    timer->reset();
  }
}

Registry& registry() {
  static Registry instance;
  return instance;
}

namespace {

[[noreturn]] void json_fail(const std::string& what) {
  throw IoError("metrics json: " + what);
}

void skip_spaces(const std::string& text, std::size_t& pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
    ++pos;
  }
}

void expect(const std::string& text, std::size_t& pos, char c) {
  skip_spaces(text, pos);
  if (pos >= text.size() || text[pos] != c) {
    json_fail(std::string("expected '") + c + "' at offset " +
              std::to_string(pos));
  }
  ++pos;
}

std::string parse_string(const std::string& text, std::size_t& pos) {
  expect(text, pos, '"');
  std::string out;
  while (pos < text.size() && text[pos] != '"') {
    // Metric names never need escapes; reject them rather than half-parse.
    if (text[pos] == '\\') {
      json_fail("escape sequences are not supported in metric names");
    }
    out += text[pos++];
  }
  if (pos >= text.size()) {
    json_fail("unterminated string");
  }
  ++pos;  // closing quote
  return out;
}

double parse_number(const std::string& text, std::size_t& pos) {
  skip_spaces(text, pos);
  char* end = nullptr;
  const double value = std::strtod(text.c_str() + pos, &end);
  if (end == text.c_str() + pos) {
    json_fail("expected a number at offset " + std::to_string(pos));
  }
  pos = static_cast<std::size_t>(end - text.c_str());
  return value;
}

}  // namespace

void to_json(std::ostream& out, const std::vector<Registry::Row>& rows) {
  out << "{\"metrics\": {";
  bool first = true;
  for (const auto& row : rows) {
    if (!first) {
      out << ", ";
    }
    first = false;
    out << '"' << row.name << "\": " << std::setprecision(17) << row.value;
  }
  out << "}}\n";
}

std::string to_json_string() {
  std::ostringstream out;
  to_json(out, registry().snapshot());
  return out.str();
}

std::vector<Registry::Row> parse_json(const std::string& text) {
  std::vector<Registry::Row> rows;
  std::size_t pos = 0;
  expect(text, pos, '{');
  if (parse_string(text, pos) != "metrics") {
    json_fail("top-level key must be \"metrics\"");
  }
  expect(text, pos, ':');
  expect(text, pos, '{');
  skip_spaces(text, pos);
  if (pos < text.size() && text[pos] == '}') {
    ++pos;  // empty object
  } else {
    while (true) {
      Registry::Row row;
      row.name = parse_string(text, pos);
      expect(text, pos, ':');
      row.value = parse_number(text, pos);
      rows.push_back(std::move(row));
      skip_spaces(text, pos);
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      expect(text, pos, '}');
      break;
    }
  }
  expect(text, pos, '}');
  skip_spaces(text, pos);
  if (pos != text.size()) {
    json_fail("trailing bytes after the closing brace");
  }
  return rows;
}

}  // namespace vmcons::metrics
