#include "util/metrics.hpp"

#include <algorithm>
#include <iomanip>

namespace vmcons::metrics {

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Timer& Registry::timer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = timers_[name];
  if (!slot) {
    slot = std::make_unique<Timer>();
  }
  return *slot;
}

std::vector<Registry::Row> Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Row> rows;
  rows.reserve(counters_.size() + 2 * timers_.size());
  for (const auto& [name, counter] : counters_) {
    rows.push_back({name, static_cast<double>(counter->value())});
  }
  for (const auto& [name, timer] : timers_) {
    rows.push_back({name + ".ms", timer->total_millis()});
    rows.push_back({name + ".calls", static_cast<double>(timer->count())});
  }
  // std::map iterates sorted, but counter and timer rows interleave.
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.name < b.name; });
  return rows;
}

void Registry::dump(std::ostream& out) const {
  for (const auto& row : snapshot()) {
    out << row.name << " = " << std::setprecision(6) << row.value << '\n';
  }
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  // In place, never reallocated: references handed out stay valid.
  for (auto& [name, counter] : counters_) {
    counter->reset();
  }
  for (auto& [name, timer] : timers_) {
    timer->reset();
  }
}

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace vmcons::metrics
