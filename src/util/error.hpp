// Error hierarchy for the vmcons library.
//
// All exceptions thrown across the public API boundary derive from
// vmcons::Error so that callers can catch one type. Internal invariant
// violations use VMCONS_ASSERT, which throws LogicError in debug-friendly
// builds instead of aborting, keeping the library usable inside long-running
// host processes (simulation drivers, capacity planners).
//
// Every Error carries a stable ErrorCode so structured consumers — the
// BatchEvaluator's quarantine records, log pipelines, RPC layers — can
// classify failures without parsing what() strings. Codes are append-only:
// never renumber or reuse a value, because CellFailure records and logs
// outlive any one build.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace vmcons {

/// Stable machine-readable failure classification. Append-only.
enum class ErrorCode : std::uint32_t {
  kUnknown = 0,           ///< not a vmcons::Error, or a pre-code throw site
  kInvalidArgument = 1,   ///< caller passed an out-of-domain argument
  kLogicError = 2,        ///< internal invariant violated (a vmcons bug)
  kNumericError = 3,      ///< convergence failure / numeric range exceeded
  kIoError = 4,           ///< file or stream operation failed
  kCancelled = 5,         ///< a RunControl's CancelToken was flipped
  kDeadlineExceeded = 6,  ///< a RunControl's Deadline expired
  kFaultInjected = 7,     ///< synthetic failure from util::FaultInjector
  kCrashInjected = 8,     ///< synthetic crash from util::fs::FsFaultInjector
};

/// Stable lowercase name of a code ("numeric_error", "cancelled", ...),
/// suitable for metrics labels and log fields.
constexpr const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kUnknown:
      return "unknown";
    case ErrorCode::kInvalidArgument:
      return "invalid_argument";
    case ErrorCode::kLogicError:
      return "logic_error";
    case ErrorCode::kNumericError:
      return "numeric_error";
    case ErrorCode::kIoError:
      return "io_error";
    case ErrorCode::kCancelled:
      return "cancelled";
    case ErrorCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case ErrorCode::kFaultInjected:
      return "fault_injected";
    case ErrorCode::kCrashInjected:
      return "crash_injected";
  }
  return "unknown";
}

/// Base class of every exception thrown by the vmcons library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what,
                 ErrorCode code = ErrorCode::kUnknown)
      : std::runtime_error(what), code_(code) {}

  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

/// A caller passed an argument outside the documented domain.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what)
      : Error(what, ErrorCode::kInvalidArgument) {}
};

/// An internal invariant was violated (a bug in vmcons itself).
class LogicError : public Error {
 public:
  explicit LogicError(const std::string& what)
      : Error(what, ErrorCode::kLogicError) {}
};

/// A numeric routine failed to converge or left its supported range. The
/// code defaults to kNumericError; the fault injector throws this type with
/// kFaultInjected so synthetic failures stay distinguishable from real ones.
class NumericError : public Error {
 public:
  explicit NumericError(const std::string& what,
                        ErrorCode code = ErrorCode::kNumericError)
      : Error(what, code) {}
};

/// An I/O operation (CSV read/write, report emission) failed.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what)
      : Error(what, ErrorCode::kIoError) {}
};

/// Work was stopped because a RunControl's CancelToken was flipped.
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what)
      : Error(what, ErrorCode::kCancelled) {}
};

/// Work was stopped because a RunControl's Deadline expired.
class DeadlineExceededError : public Error {
 public:
  explicit DeadlineExceededError(const std::string& what)
      : Error(what, ErrorCode::kDeadlineExceeded) {}
};

/// A synthetic process crash thrown by util::fs::FsFaultInjector at an armed
/// crash-at-op point. Crash-recovery tests let it unwind out of the whole
/// persistence operation (like a kill) and then restart; production code
/// must never catch it short of the test harness, or the simulated crash
/// would be softer than a real one.
class CrashInjectedError : public Error {
 public:
  explicit CrashInjectedError(const std::string& what)
      : Error(what, ErrorCode::kCrashInjected) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) {
  throw LogicError(std::string("vmcons invariant violated: ") + expr + " at " +
                   file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace vmcons

/// Contract check for internal invariants; throws LogicError on failure.
#define VMCONS_ASSERT(expr)                                      \
  do {                                                           \
    if (!(expr)) {                                               \
      ::vmcons::detail::assert_fail(#expr, __FILE__, __LINE__);  \
    }                                                            \
  } while (false)

/// Precondition check for public-API arguments; throws InvalidArgument.
#define VMCONS_REQUIRE(expr, msg)                 \
  do {                                            \
    if (!(expr)) {                                \
      throw ::vmcons::InvalidArgument(msg);       \
    }                                             \
  } while (false)
