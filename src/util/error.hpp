// Error hierarchy for the vmcons library.
//
// All exceptions thrown across the public API boundary derive from
// vmcons::Error so that callers can catch one type. Internal invariant
// violations use VMCONS_ASSERT, which throws LogicError in debug-friendly
// builds instead of aborting, keeping the library usable inside long-running
// host processes (simulation drivers, capacity planners).
#pragma once

#include <stdexcept>
#include <string>

namespace vmcons {

/// Base class of every exception thrown by the vmcons library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller passed an argument outside the documented domain.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// An internal invariant was violated (a bug in vmcons itself).
class LogicError : public Error {
 public:
  explicit LogicError(const std::string& what) : Error(what) {}
};

/// A numeric routine failed to converge or left its supported range.
class NumericError : public Error {
 public:
  explicit NumericError(const std::string& what) : Error(what) {}
};

/// An I/O operation (CSV read/write, report emission) failed.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) {
  throw LogicError(std::string("vmcons invariant violated: ") + expr + " at " +
                   file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace vmcons

/// Contract check for internal invariants; throws LogicError on failure.
#define VMCONS_ASSERT(expr)                                      \
  do {                                                           \
    if (!(expr)) {                                               \
      ::vmcons::detail::assert_fail(#expr, __FILE__, __LINE__);  \
    }                                                            \
  } while (false)

/// Precondition check for public-API arguments; throws InvalidArgument.
#define VMCONS_REQUIRE(expr, msg)                 \
  do {                                            \
    if (!(expr)) {                                \
      throw ::vmcons::InvalidArgument(msg);       \
    }                                             \
  } while (false)
