#include "virt/impact.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "util/error.hpp"

namespace vmcons::virt {
namespace {

std::string format_number(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

class ConstantModel final : public Impact::Model {
 public:
  explicit ConstantModel(double value) : value_(value) {}
  double raw_factor(unsigned) const override { return value_; }
  std::string describe() const override {
    return "a(v) = " + format_number(value_);
  }

 private:
  double value_;
};

class LinearModel final : public Impact::Model {
 public:
  LinearModel(double intercept, double slope)
      : intercept_(intercept), slope_(slope) {}
  double raw_factor(unsigned vm_count) const override {
    return intercept_ + slope_ * static_cast<double>(vm_count);
  }
  std::string describe() const override {
    return "a(v) = " + format_number(intercept_) +
           (slope_ < 0 ? " - " : " + ") + format_number(std::abs(slope_)) + " v";
  }

 private:
  double intercept_;
  double slope_;
};

class RationalModel final : public Impact::Model {
 public:
  RationalModel(double amplitude, double half_point)
      : amplitude_(amplitude), half_point_(half_point) {}
  double raw_factor(unsigned vm_count) const override {
    const double v2 = static_cast<double>(vm_count) * static_cast<double>(vm_count);
    return amplitude_ * v2 / (v2 + half_point_);
  }
  std::string describe() const override {
    return "a(v) = " + format_number(amplitude_) + " v^2 / (v^2 + " +
           format_number(half_point_) + ")";
  }

 private:
  double amplitude_;
  double half_point_;
};

class TableModel final : public Impact::Model {
 public:
  explicit TableModel(std::vector<std::pair<unsigned, double>> points)
      : points_(std::move(points)) {}
  double raw_factor(unsigned vm_count) const override {
    if (vm_count <= points_.front().first) {
      return points_.front().second;
    }
    if (vm_count >= points_.back().first) {
      return points_.back().second;
    }
    for (std::size_t i = 1; i < points_.size(); ++i) {
      if (vm_count <= points_[i].first) {
        const auto& [x0, y0] = points_[i - 1];
        const auto& [x1, y1] = points_[i];
        const double t = static_cast<double>(vm_count - x0) /
                         static_cast<double>(x1 - x0);
        return y0 + t * (y1 - y0);
      }
    }
    return points_.back().second;
  }
  std::string describe() const override {
    return "a(v) = table[" + std::to_string(points_.size()) + " points]";
  }

 private:
  std::vector<std::pair<unsigned, double>> points_;
};

}  // namespace

Impact::Impact() : model_(std::make_shared<ConstantModel>(1.0)) {}

Impact::Impact(std::shared_ptr<const Model> model) : model_(std::move(model)) {
  VMCONS_REQUIRE(model_ != nullptr, "impact model must not be null");
}

double Impact::raw_factor(unsigned vm_count) const {
  return model_->raw_factor(vm_count);
}

double Impact::factor(unsigned vm_count) const {
  return std::clamp(model_->raw_factor(vm_count), kMinFactor, 1.0);
}

std::string Impact::describe() const { return model_->describe(); }

Impact Impact::constant(double value) {
  VMCONS_REQUIRE(value > 0.0, "constant impact must be positive");
  return Impact(std::make_shared<ConstantModel>(value));
}

Impact Impact::linear(double intercept, double slope) {
  return Impact(std::make_shared<LinearModel>(intercept, slope));
}

Impact Impact::rational_saturating(double amplitude, double half_point) {
  VMCONS_REQUIRE(amplitude > 0.0 && half_point > 0.0,
                 "rational impact parameters must be positive");
  return Impact(std::make_shared<RationalModel>(amplitude, half_point));
}

Impact Impact::table(std::vector<std::pair<unsigned, double>> points) {
  VMCONS_REQUIRE(!points.empty(), "impact table must not be empty");
  for (std::size_t i = 1; i < points.size(); ++i) {
    VMCONS_REQUIRE(points[i].first > points[i - 1].first,
                   "impact table must be sorted by VM count");
  }
  return Impact(std::make_shared<TableModel>(std::move(points)));
}

Impact Impact::paper_web_disk_io() { return linear(1.082, -0.102); }

Impact Impact::paper_web_cpu() { return linear(0.658, -0.039); }

Impact Impact::paper_db_cpu() { return rational_saturating(1.85, 0.85); }

Impact Impact::none() { return constant(1.0); }

void fill_factors(std::span<const Impact* const> curves, unsigned vm_count,
                  std::span<double> out) {
  VMCONS_REQUIRE(curves.size() == out.size(),
                 "fill_factors needs one output slot per curve");
  for (std::size_t i = 0; i < curves.size(); ++i) {
    VMCONS_REQUIRE(curves[i] != nullptr, "impact curve must not be null");
    out[i] = curves[i]->factor(vm_count);
  }
}

}  // namespace vmcons::virt
