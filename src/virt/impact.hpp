// Virtualization impact-factor models.
//
// The paper's model consumes a scalar a_ij in (0, 1] per (resource, service):
// "the ratio of the QoS provided by VMs to that provided by the native
// Linux" (Section III). Empirically (Section IV-C1) the factor depends on
// how many VMs share the physical server, and the paper fits:
//
//   Web service, disk I/O:   a(v) = 1.082 - 0.102 v     (Fig. 5b)
//   Web service, CPU:        a(v) = 0.658 - 0.039 v     (Fig. 6b)
//   DB service, CPU&software a(v) = 1.85 v^2/(v^2+0.85) (Fig. 8b)
//
// The DB curve exceeds 1 for v >= 2 because a single OS instance caps MySQL
// throughput ("OS software limits the performance improvement"); multiple
// VMs bypass that ceiling. The model clamps factors used for planning to
// (0, 1] per its own definition, but the raw curves are exposed for the
// calibration benches.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

namespace vmcons::virt {

/// Value-semantic handle to an impact-factor curve a(v), v = number of VMs
/// co-resident on one physical server.
class Impact {
 public:
  class Model {
   public:
    virtual ~Model() = default;
    virtual double raw_factor(unsigned vm_count) const = 0;
    virtual std::string describe() const = 0;
  };

  /// Default-constructs the identity curve a(v) = 1 (no virtualization).
  Impact();

  /// Wraps a model implementation (used by the factories below).
  explicit Impact(std::shared_ptr<const Model> model);

  /// Raw curve value (may exceed 1, e.g. the DB software-ceiling effect).
  double raw_factor(unsigned vm_count) const;

  /// Planning factor: raw value clamped to (kMinFactor, 1], matching the
  /// model's definition 0 < a <= 1.
  double factor(unsigned vm_count) const;

  /// Human-readable formula, e.g. "a(v) = 1.082 - 0.102 v".
  std::string describe() const;

  static constexpr double kMinFactor = 0.01;

  /// a(v) = value, independent of v. value must be positive.
  static Impact constant(double value);

  /// a(v) = intercept + slope * v.
  static Impact linear(double intercept, double slope);

  /// a(v) = amplitude * v^2 / (v^2 + half_point).
  static Impact rational_saturating(double amplitude, double half_point);

  /// Piecewise-linear interpolation through (v, a) points; clamps outside.
  static Impact table(std::vector<std::pair<unsigned, double>> points);

  // --- Paper presets (Section IV-C1) -------------------------------------
  static Impact paper_web_disk_io();  ///< Fig. 5(b)
  static Impact paper_web_cpu();      ///< Fig. 6(b)
  static Impact paper_db_cpu();       ///< Fig. 8(b)
  static Impact none();               ///< a(v) = 1: native (no virtualization)

 private:
  std::shared_ptr<const Model> model_;
};

/// Per-column batch evaluation: out[i] = curves[i]->factor(vm_count), the
/// clamped planning factor. The columnar ScenarioBatch builder hands one
/// resource's curves (gathered across services) per call, so batch
/// evaluation never re-enters the virt layer. curves and out must have the
/// same length, and no curve may be null.
void fill_factors(std::span<const Impact* const> curves, unsigned vm_count,
                  std::span<double> out);

}  // namespace vmcons::virt
