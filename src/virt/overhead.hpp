// Xen-like overhead injection for the simulator.
//
// The testbed we cannot have (Rainbow on Xen) degrades service rates by the
// impact factor and adds hypervisor housekeeping (Domain-0). This component
// converts a native per-request service rate into the effective rate seen
// by a VM, given how many VMs share the physical server and whether vCPUs
// are pinned — reproducing the knobs of the paper's Figs. 5-8.
#pragma once

#include "virt/impact.hpp"

namespace vmcons::virt {

/// vCPU scheduling mode of a VM (Fig. 7 compares these).
enum class VcpuMode {
  kPinned,        ///< each vCPU pinned to a physical core (paper's choice)
  kXenScheduled,  ///< left to the Xen credit scheduler
};

/// Penalty the credit scheduler costs relative to pinning, from Fig. 7:
/// un-pinned DB VMs lose roughly a quarter of their throughput.
inline constexpr double kXenSchedulerPenalty = 0.75;

struct OverheadConfig {
  Impact impact = Impact::none();
  VcpuMode vcpu_mode = VcpuMode::kPinned;
  /// Fraction of one server's capacity consumed by Domain-0 per co-resident
  /// VM (small, but grows with VM count; default calibrated so 9 VMs cost
  /// ~4% extra, consistent with the Fig. 5/6 curves already embedding the
  /// bulk of the loss in the impact factor).
  double domain0_tax_per_vm = 0.004;
};

/// Effective service rate of one VM-hosted "server" for a request class
/// whose native rate is `native_rate`, when `vm_count` VMs share the host.
double effective_rate(const OverheadConfig& config, double native_rate,
                      unsigned vm_count);

/// The multiplier applied to the native rate (for reporting): impact *
/// scheduler penalty * (1 - domain0 tax).
double rate_multiplier(const OverheadConfig& config, unsigned vm_count);

/// Software-scalability ceiling for the DB service (Fig. 8a): with a single
/// OS instance (native Linux or one VM), MySQL throughput saturates at
/// roughly half of what the hardware supports; v >= 2 VMs escape the
/// ceiling. Returns the throughput cap multiplier in (0, 1].
double software_ceiling(unsigned os_instances);

/// The paper's observed single-OS ceiling: native throughput is ~1/1.85 of
/// the multi-VM plateau (the amplitude of the Fig. 8(b) fit).
inline constexpr double kSingleOsCeiling = 1.0 / 1.85;

}  // namespace vmcons::virt
