#include "virt/overhead.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace vmcons::virt {

double rate_multiplier(const OverheadConfig& config, unsigned vm_count) {
  VMCONS_REQUIRE(vm_count >= 1, "at least one VM must be present");
  double multiplier = config.impact.factor(vm_count);
  if (config.vcpu_mode == VcpuMode::kXenScheduled) {
    multiplier *= kXenSchedulerPenalty;
  }
  const double tax = config.domain0_tax_per_vm * static_cast<double>(vm_count);
  multiplier *= std::max(0.05, 1.0 - tax);
  return multiplier;
}

double effective_rate(const OverheadConfig& config, double native_rate,
                      unsigned vm_count) {
  VMCONS_REQUIRE(native_rate > 0.0, "native rate must be positive");
  return native_rate * rate_multiplier(config, vm_count);
}

double software_ceiling(unsigned os_instances) {
  VMCONS_REQUIRE(os_instances >= 1, "at least one OS instance required");
  if (os_instances == 1) {
    return kSingleOsCeiling;
  }
  // Two or more OS instances saturate the hardware; the residual overhead is
  // carried by the impact factor, not this ceiling.
  return 1.0;
}

}  // namespace vmcons::virt
