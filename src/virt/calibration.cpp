#include "virt/calibration.hpp"

#include "util/error.hpp"

namespace vmcons::virt {

double stable_mean_throughput(const ThroughputCurve& curve,
                              double saturation_from) {
  VMCONS_REQUIRE(curve.offered.size() == curve.throughput.size(),
                 "curve offered/throughput lengths differ");
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < curve.offered.size(); ++i) {
    if (curve.offered[i] >= saturation_from) {
      sum += curve.throughput[i];
      ++count;
    }
  }
  VMCONS_REQUIRE(count > 0, "no sweep points in the saturated region");
  return sum / static_cast<double>(count);
}

std::vector<ImpactSample> impact_factors(
    const ThroughputCurve& native,
    const std::vector<ThroughputCurve>& vm_curves, double saturation_from) {
  const double native_mean = stable_mean_throughput(native, saturation_from);
  VMCONS_REQUIRE(native_mean > 0.0, "native stable throughput must be positive");
  std::vector<ImpactSample> samples;
  samples.reserve(vm_curves.size());
  for (const auto& curve : vm_curves) {
    VMCONS_REQUIRE(curve.vm_count >= 1, "VM curves need vm_count >= 1");
    samples.push_back(
        {curve.vm_count,
         stable_mean_throughput(curve, saturation_from) / native_mean});
  }
  return samples;
}

namespace {
void split(const std::vector<ImpactSample>& samples, std::vector<double>& x,
           std::vector<double>& y) {
  x.reserve(samples.size());
  y.reserve(samples.size());
  for (const auto& sample : samples) {
    x.push_back(static_cast<double>(sample.vm_count));
    y.push_back(sample.factor);
  }
}
}  // namespace

LinearFit calibrate_linear(const std::vector<ImpactSample>& samples) {
  std::vector<double> x, y;
  split(samples, x, y);
  return fit_linear(x, y);
}

RationalSaturatingFit calibrate_rational(const std::vector<ImpactSample>& samples) {
  std::vector<double> x, y;
  split(samples, x, y);
  return fit_rational_saturating(x, y);
}

}  // namespace vmcons::virt
