// Impact-factor calibration from measured throughput curves.
//
// Reproduces the paper's Section IV-C1 procedure: for each VM count v, run a
// load sweep, take the *stable mean throughput* over the saturated region,
// divide by the native stable mean to get the impact factor a(v), then fit
// a curve by least squares (linear for the Web service, rational saturating
// for the DB service). Closing this loop against our own simulator is how
// we check the encoded presets are self-consistent.
#pragma once

#include <vector>

#include "stats/regression.hpp"

namespace vmcons::virt {

/// One measured load-sweep curve: offered rate (x) vs delivered throughput
/// (y) for a fixed VM count. vm_count = 0 denotes the native (no-VM) run.
struct ThroughputCurve {
  unsigned vm_count = 0;
  std::vector<double> offered;
  std::vector<double> throughput;
};

/// Mean throughput over the saturated region: all sweep points with offered
/// rate >= saturation_from. This is the paper's "stable mean throughput".
double stable_mean_throughput(const ThroughputCurve& curve,
                              double saturation_from);

/// Impact factor per VM curve: stable mean of each VM curve divided by the
/// native stable mean. Curves must all include points at or beyond
/// saturation_from.
struct ImpactSample {
  unsigned vm_count;
  double factor;
};
std::vector<ImpactSample> impact_factors(const ThroughputCurve& native,
                                         const std::vector<ThroughputCurve>& vm_curves,
                                         double saturation_from);

/// Fits a(v) = intercept + slope * v to the samples (Figs. 5b/6b procedure).
LinearFit calibrate_linear(const std::vector<ImpactSample>& samples);

/// Fits a(v) = A v^2 / (v^2 + B) to the samples (Fig. 8b procedure).
RationalSaturatingFit calibrate_rational(const std::vector<ImpactSample>& samples);

}  // namespace vmcons::virt
