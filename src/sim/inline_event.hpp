// Small-buffer-optimized, move-only event closure.
//
// The engine's calendar stores one closure per scheduled event; with
// std::function every capture larger than the libstdc++ 16-byte buffer costs
// a heap allocation per event. The common closures in this library (a `this`
// pointer plus a couple of indices and a double — see pool_sim, loss_network,
// tandem, autoscaler, the workload drivers) all fit in well under 48 bytes,
// so InlineEvent reserves 48 inline bytes and only falls back to the heap for
// oversized or over-aligned captures. Events fire at most once and are never
// copied, which is why InlineEvent is move-only: moves between calendar slots
// relocate the callable (move-construct + destroy source) without touching
// the heap.
// Trivially-copyable inline callables (every simulation closure in this
// library: raw pointers + indices + doubles) take a fast path with no ops
// table at all — relocation is a buffer copy and destruction is a no-op —
// so the calendar hot loop performs zero indirect calls beyond the one
// unavoidable invoke.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace vmcons::sim {

class InlineEvent {
 public:
  /// Inline storage contract: any callable with
  ///   sizeof(F) <= kInlineSize, alignof(F) <= kInlineAlign,
  /// and a noexcept move constructor is stored inline (zero allocations);
  /// anything else lives in a single heap allocation owned by the event.
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  /// True when callable F will use the inline buffer (compile-time query,
  /// used by tests and benches to pin down the zero-allocation guarantee).
  template <typename F>
  static constexpr bool stores_inline() noexcept {
    using Decayed = std::decay_t<F>;
    return fits_inline<Decayed>;
  }

  InlineEvent() noexcept = default;

  template <typename F,
            std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineEvent> &&
                    std::is_invocable_r_v<void, std::decay_t<F>&>,
                int> = 0>
  InlineEvent(F&& fn) {  // NOLINT(google-explicit-constructor): closures
                         // convert implicitly, mirroring std::function.
    using Decayed = std::decay_t<F>;
    if constexpr (fits_inline<Decayed>) {
      ::new (static_cast<void*>(storage_)) Decayed(std::forward<F>(fn));
    } else {
      ::new (static_cast<void*>(storage_))
          Decayed*(new Decayed(std::forward<F>(fn)));
    }
    invoke_ = &Ops<Decayed>::invoke;
    // Trivial inline callables need no ops table: relocation is a buffer
    // copy and destruction is a no-op. ops_ stays null for them, which the
    // move path and reset() branch on.
    if constexpr (!trivial_inline<Decayed>) {
      ops_ = &Ops<Decayed>::vtable;
    }
  }

  InlineEvent(InlineEvent&& other) noexcept
      : invoke_(other.invoke_), ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
    } else if (invoke_ != nullptr) {
      std::memcpy(storage_, other.storage_, kInlineSize);
    }
    other.invoke_ = nullptr;
    other.ops_ = nullptr;
  }

  InlineEvent& operator=(InlineEvent&& other) noexcept {
    if (this != &other) {
      reset();
      invoke_ = other.invoke_;
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
      } else if (invoke_ != nullptr) {
        std::memcpy(storage_, other.storage_, kInlineSize);
      }
      other.invoke_ = nullptr;
      other.ops_ = nullptr;
    }
    return *this;
  }

  InlineEvent(const InlineEvent&) = delete;
  InlineEvent& operator=(const InlineEvent&) = delete;

  ~InlineEvent() { reset(); }

  /// True when a callable is held.
  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  /// Invokes the callable; undefined when empty (the engine only invokes
  /// slots it just verified live).
  void operator()() { invoke_(storage_); }

  /// Takes `other`'s callable; *this must be empty (engine hot path: a
  /// recycled slot's previous closure was already moved out or reset, so
  /// the move-assign's destroy-the-old-value branch is dead weight).
  void adopt_empty(InlineEvent&& other) noexcept {
    invoke_ = other.invoke_;
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
    } else if (invoke_ != nullptr) {
      std::memcpy(storage_, other.storage_, kInlineSize);
    }
    other.invoke_ = nullptr;
    other.ops_ = nullptr;
  }

  /// Destroys the held callable, leaving the event empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
    invoke_ = nullptr;
  }

 private:
  struct VTable {
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename F>
  static constexpr bool fits_inline =
      sizeof(F) <= kInlineSize && alignof(F) <= kInlineAlign &&
      std::is_nothrow_move_constructible_v<F>;

  /// Inline *and* bitwise-relocatable with nothing to destroy — the engine's
  /// hot path moves these with memcpy and never calls through an ops table.
  template <typename F>
  static constexpr bool trivial_inline =
      fits_inline<F> && std::is_trivially_copyable_v<F> &&
      std::is_trivially_destructible_v<F>;

  template <typename F>
  struct Ops {
    static F* object(void* storage) noexcept {
      if constexpr (fits_inline<F>) {
        return std::launder(reinterpret_cast<F*>(storage));
      } else {
        return *std::launder(reinterpret_cast<F**>(storage));
      }
    }
    static void invoke(void* storage) { (*object(storage))(); }
    static void relocate(void* dst, void* src) noexcept {
      if constexpr (fits_inline<F>) {
        F* from = object(src);
        ::new (dst) F(std::move(*from));
        from->~F();
      } else {
        ::new (dst) F*(object(src));  // ownership transfer: pointer copy
      }
    }
    static void destroy(void* storage) noexcept {
      if constexpr (fits_inline<F>) {
        object(storage)->~F();
      } else {
        delete object(storage);
      }
    }
    static constexpr VTable vtable{&relocate, &destroy};
  };

  alignas(kInlineAlign) unsigned char storage_[kInlineSize];
  void (*invoke_)(void* storage) = nullptr;
  const VTable* ops_ = nullptr;
};

}  // namespace vmcons::sim
