// Replicated-run harness: runs R independent simulation replications in
// parallel, each with its own deterministic RNG stream, and aggregates the
// results. The foundation of every model-vs-simulation validation in the
// library.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/confidence.hpp"
#include "stats/summary.hpp"
#include "util/parallel_for.hpp"
#include "util/rng.hpp"

namespace vmcons::sim {

/// Runs `fn(replication_index, rng)` for each replication in parallel.
/// Results are returned in replication order; output is independent of the
/// worker-thread count because each replication derives its randomness from
/// make_stream(seed, index). Pass an explicit pool to control parallelism
/// (the default shared pool honors the VMCONS_THREADS environment variable).
template <typename Fn>
auto replicate(std::size_t replications, std::uint64_t seed, Fn&& fn,
               ThreadPool& pool = ThreadPool::shared())
    -> std::vector<decltype(fn(std::size_t{0}, std::declval<Rng&>()))> {
  return parallel_map(
      replications,
      [&](std::size_t index) {
        Rng rng = make_stream(seed, index);
        return fn(index, rng);
      },
      pool);
}

/// Aggregate of replicated scalar estimates.
struct ReplicatedEstimate {
  Summary summary;
  ConfidenceInterval interval;  ///< 95% t-interval over replications
};

/// Runs replications of a scalar-valued experiment and summarizes them.
template <typename Fn>
ReplicatedEstimate replicate_scalar(std::size_t replications, std::uint64_t seed,
                                    Fn&& fn) {
  const std::vector<double> values =
      replicate(replications, seed, std::forward<Fn>(fn));
  ReplicatedEstimate estimate;
  for (const double value : values) {
    estimate.summary.add(value);
  }
  if (estimate.summary.count() >= 2) {
    estimate.interval = mean_confidence_interval(estimate.summary);
  } else {
    estimate.interval.mean = estimate.summary.mean();
    estimate.interval.lower = estimate.interval.upper = estimate.interval.mean;
  }
  return estimate;
}

}  // namespace vmcons::sim
