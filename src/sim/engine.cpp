#include "sim/engine.hpp"

#include <limits>
#include <utility>

#include "util/error.hpp"

namespace vmcons::sim {

EventId Engine::schedule_at(double when, EventFn fn) {
  VMCONS_REQUIRE(when >= now_, "cannot schedule an event in the past");
  const EventId id = next_sequence_++;
  queue_.push(Event{when, id, std::move(fn)});
  live_.insert(id);
  return id;
}

EventId Engine::schedule_in(double delay, EventFn fn) {
  VMCONS_REQUIRE(delay >= 0.0, "event delay must be >= 0");
  return schedule_at(now_ + delay, std::move(fn));
}

bool Engine::cancel(EventId id) {
  if (live_.erase(id) == 0) {
    return false;  // already ran, already cancelled, or never existed
  }
  cancelled_.insert(id);
  return true;
}

bool Engine::step(double limit) {
  // Skip lazily-cancelled events, but never past `limit`: a cancelled event
  // at the top must not cause a later-than-horizon event to run.
  while (!queue_.empty() && queue_.top().time <= limit) {
    // priority_queue::top() is const; the closure must be moved out before
    // pop.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (const auto it = cancelled_.find(event.sequence);
        it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;  // lazily-cancelled event: skip without running
    }
    live_.erase(event.sequence);
    now_ = event.time;
    ++executed_;
    event.fn();
    return true;
  }
  return false;
}

void Engine::run() {
  stopping_ = false;
  while (!stopping_ && step(std::numeric_limits<double>::infinity())) {
  }
}

void Engine::run_until(double horizon) {
  VMCONS_REQUIRE(horizon >= now_, "horizon precedes current time");
  stopping_ = false;
  while (!stopping_ && step(horizon)) {
  }
  // A stop() request freezes the clock where the stopping event ran; only
  // an exhausted calendar advances to the horizon.
  if (!stopping_ && now_ < horizon) {
    now_ = horizon;
  }
}

}  // namespace vmcons::sim
