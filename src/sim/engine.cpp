#include "sim/engine.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/error.hpp"
#include "util/metrics.hpp"

namespace vmcons::sim {
namespace {

/// Compaction threshold: rebuild once dead entries outnumber live ones
/// (i.e. exceed half the calendar), with a floor so tiny calendars never
/// pay the O(n) rebuild.
constexpr std::size_t kMinCompactSize = 16;

}  // namespace

EventId Engine::schedule_at(double when, EventFn fn) {
  VMCONS_REQUIRE(when >= now_, "cannot schedule an event in the past");
  const EventId id = next_sequence_++;
  queue_.push_back(Event{when, id, std::move(fn)});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
  live_.insert(id);
  return id;
}

EventId Engine::schedule_in(double delay, EventFn fn) {
  VMCONS_REQUIRE(delay >= 0.0, "event delay must be >= 0");
  return schedule_at(now_ + delay, std::move(fn));
}

bool Engine::cancel(EventId id) {
  if (live_.erase(id) == 0) {
    return false;  // already ran, already cancelled, or never existed
  }
  cancelled_.insert(id);
  // Without this, entries cancelled beyond a run_until horizon are never
  // popped and the calendar grows without bound.
  if (cancelled_.size() >= kMinCompactSize &&
      cancelled_.size() > live_.size()) {
    compact();
  }
  return true;
}

void Engine::compact() {
  queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                              [this](const Event& event) {
                                return cancelled_.count(event.sequence) > 0;
                              }),
               queue_.end());
  std::make_heap(queue_.begin(), queue_.end(), Later{});
  cancelled_.clear();
}

bool Engine::step(double limit) {
  // Skip lazily-cancelled events, but never past `limit`: a cancelled event
  // at the top must not cause a later-than-horizon event to run.
  while (!queue_.empty() && queue_.front().time <= limit) {
    std::pop_heap(queue_.begin(), queue_.end(), Later{});
    Event event = std::move(queue_.back());
    queue_.pop_back();
    if (const auto it = cancelled_.find(event.sequence);
        it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;  // lazily-cancelled event: skip without running
    }
    live_.erase(event.sequence);
    now_ = event.time;
    ++executed_;
    event.fn();
    return true;
  }
  return false;
}

void Engine::run() {
  stopping_ = false;
  const std::uint64_t before = executed_;
  while (!stopping_ && step(std::numeric_limits<double>::infinity())) {
  }
  static metrics::Counter& events = metrics::registry().counter("engine.events");
  events.add(executed_ - before);
}

void Engine::run_until(double horizon) {
  VMCONS_REQUIRE(horizon >= now_, "horizon precedes current time");
  stopping_ = false;
  const std::uint64_t before = executed_;
  while (!stopping_ && step(horizon)) {
  }
  // A stop() request freezes the clock where the stopping event ran; only
  // an exhausted calendar advances to the horizon.
  if (!stopping_ && now_ < horizon) {
    now_ = horizon;
  }
  static metrics::Counter& events = metrics::registry().counter("engine.events");
  events.add(executed_ - before);
}

}  // namespace vmcons::sim
