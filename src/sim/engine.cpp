// Engine definitions: the per-event hot path (schedule/step/cancel and the
// 4-ary sifts) plus construction, the purge/heapify rebuild, the run loops,
// and metric flushing. The hot path stays out of line on purpose — inlining
// it into callers measured slower (larger closures' invoke thunks, worse
// icache behaviour).
#include "sim/engine.hpp"

#include <algorithm>
#include <limits>

#include "util/metrics.hpp"

namespace vmcons::sim {
namespace {

// Branch-shape hints for the per-event path: slots nearly always recycle
// (the free list is only empty while the calendar grows toward its
// high-water mark) and popped entries are nearly always live (cancellation
// is the rare case in every simulation this library runs).
inline bool likely(bool condition) noexcept {
  return __builtin_expect(condition, 1);
}

}  // namespace

Engine::Engine()
    : events_metric_(&metrics::registry().counter("engine.events")),
      cancels_metric_(&metrics::registry().counter("engine.cancels")) {}

Engine::~Engine() { flush_metrics(); }

EventId Engine::acquire_slot(EventFn&& fn) {
  if (likely(free_head_ != kNoFreeSlot)) {
    const std::uint32_t index = free_head_;
    Slot& slot = slots_[index];
    free_head_ = slot.next_free;
    const std::uint32_t generation = ++slot.generation;  // odd -> even
    slot.fn.adopt_empty(std::move(fn));  // fired/cancelled tenants left empty
    return pack(index, generation);
  }
  VMCONS_REQUIRE(slots_.size() < kNoFreeSlot,
                 "event calendar slot space exhausted");
  const auto index = static_cast<std::uint32_t>(slots_.size());
  Slot& slot = slots_.emplace_back();  // generation 0: occupied
  slot.fn.adopt_empty(std::move(fn));
  return pack(index, 0);
}

void Engine::release_slot(std::uint32_t index) noexcept {
  Slot& slot = slots_[index];
  ++slot.generation;  // even (occupied) -> odd (free)
  slot.next_free = free_head_;
  free_head_ = index;
}

void Engine::sift_up(std::size_t pos) noexcept {
  HeapEntry* const heap = queue_.data();
  const HeapEntry moving = heap[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (!earlier(moving, heap[parent])) {
      break;
    }
    heap[pos] = heap[parent];
    pos = parent;
  }
  heap[pos] = moving;
}

void Engine::sift_down(std::size_t pos, std::uint64_t time_bits,
                       std::uint64_t sequence,
                       std::uint64_t slot_and_generation) noexcept {
  HeapEntry* const heap = queue_.data();
  const std::size_t size = queue_.size();
  const HeapEntry moving{time_bits, sequence,
                         static_cast<std::uint32_t>(slot_and_generation),
                         static_cast<std::uint32_t>(slot_and_generation >> 32)};
  for (;;) {
    const std::size_t first_child = 4 * pos + 1;
    if (first_child >= size) {
      break;
    }
    const std::size_t last_child = std::min(first_child + 4, size);
    std::size_t best = first_child;
    for (std::size_t child = first_child + 1; child < last_child; ++child) {
      if (earlier(heap[child], heap[best])) {
        best = child;
      }
    }
    if (!earlier(heap[best], moving)) {
      break;
    }
    heap[pos] = heap[best];
    pos = best;
  }
  heap[pos] = moving;
}

EventId Engine::schedule_impl(double when, EventFn&& fn) {
  VMCONS_REQUIRE(when >= now_, "cannot schedule an event in the past");
  const EventId id = acquire_slot(std::move(fn));
  queue_.push_back(HeapEntry{time_key(when), next_sequence_++,
                             static_cast<std::uint32_t>(id & 0xffffffffu),
                             static_cast<std::uint32_t>(id >> 32)});
  sift_up(queue_.size() - 1);
  ++live_;
  return id;
}

EventId Engine::schedule_at(double when, EventFn fn) {
  return schedule_impl(when, std::move(fn));
}

EventId Engine::schedule_in(double delay, EventFn fn) {
  VMCONS_REQUIRE(delay >= 0.0, "event delay must be >= 0");
  return schedule_impl(now_ + delay, std::move(fn));
}

bool Engine::cancel(EventId id) {
  const auto index = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (index >= slots_.size() || slots_[index].generation != generation) {
    return false;  // already ran, already cancelled, or never existed
  }
  slots_[index].fn.reset();  // destroy the closure eagerly
  release_slot(index);
  --live_;
  ++stale_;
  ++cancels_;
  // Without this, entries cancelled beyond a run_until horizon are never
  // popped and the calendar grows without bound.
  if (stale_ >= kMinPurgeSize && stale_ > live_) {
    purge();
  }
  return true;
}

bool Engine::step(double limit) {
  // Skip dead entries, but never past `limit`: a cancelled event at the top
  // must not cause a later-than-horizon event to run. `limit` is converted
  // once per step; key order matches value order (see time_key).
  const std::uint64_t limit_bits = time_key(limit);
  while (!queue_.empty() && queue_.front().time_bits <= limit_bits) {
    const HeapEntry entry = queue_.front();
    const HeapEntry displaced = queue_.back();
    queue_.pop_back();
    if (!queue_.empty()) {
      sift_down(0, displaced.time_bits, displaced.sequence,
                pack(displaced.slot, displaced.generation));
    }
    Slot& slot = slots_[entry.slot];
    if (!likely(slot.generation == entry.generation)) {
      --stale_;
      continue;  // cancelled: closure already destroyed, skip the POD
    }
    // Move the closure out and free the slot *before* invoking: the closure
    // may schedule events, which can grow slots_ and recycle this slot.
    EventFn fn = std::move(slot.fn);
    release_slot(entry.slot);
    --live_;
    now_ = key_time(entry.time_bits);
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Engine::purge() {
  queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                              [this](const HeapEntry& entry) {
                                return slots_[entry.slot].generation !=
                                       entry.generation;
                              }),
               queue_.end());
  heapify();
  stale_ = 0;
}

void Engine::heapify() noexcept {
  if (queue_.size() < 2) {
    return;
  }
  for (std::size_t pos = (queue_.size() - 2) / 4 + 1; pos-- > 0;) {
    const HeapEntry entry = queue_[pos];
    sift_down(pos, entry.time_bits, entry.sequence,
              pack(entry.slot, entry.generation));
  }
}

void Engine::run() {
  stopping_ = false;
  while (!stopping_ && step(std::numeric_limits<double>::infinity())) {
  }
  flush_metrics();
}

void Engine::run_until(double horizon) {
  VMCONS_REQUIRE(horizon >= now_, "horizon precedes current time");
  stopping_ = false;
  while (!stopping_ && step(horizon)) {
  }
  // A stop() request freezes the clock where the stopping event ran; only
  // an exhausted calendar advances to the horizon.
  if (!stopping_ && now_ < horizon) {
    now_ = horizon;
  }
  flush_metrics();
}

void Engine::flush_metrics() noexcept {
  if (executed_ != flushed_executed_) {
    events_metric_->add(executed_ - flushed_executed_);
    flushed_executed_ = executed_;
  }
  if (cancels_ != flushed_cancels_) {
    cancels_metric_->add(cancels_ - flushed_cancels_);
    flushed_cancels_ = cancels_;
  }
}

}  // namespace vmcons::sim
