// Discrete-event simulation engine.
//
// The calendar is a 4-ary heap of 24-byte POD entries over a
// generation-counted slot map: each scheduled event owns a slot holding its
// closure (an InlineEvent — 48 inline bytes, so common closures never touch
// the heap) and a generation counter. An EventId packs {generation, slot}
// into one uint64, so cancel() is two array writes and liveness at pop time
// is a single load — no hash sets anywhere. Freed slots recycle through an
// intrusive free list, so steady-state simulation performs zero allocations
// per event once the calendar has reached its high-water mark.
//
// Ties break by insertion order (a monotonic sequence number carried in the
// heap entry), which makes runs fully deterministic. The engine owns no
// model state; models (clusters, workload drivers) capture what they need in
// the closures.
//
// Time is in seconds of simulated time, starting at 0.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "sim/inline_event.hpp"
#include "util/error.hpp"

namespace vmcons::metrics {
class Counter;
}  // namespace vmcons::metrics


namespace vmcons::sim {

using EventFn = InlineEvent;

/// Handle for cancelling a scheduled event. Packed {generation:32, slot:32};
/// the slot's generation advances every time the slot is consumed (fired or
/// cancelled), so a stale handle can never affect the slot's next tenant.
/// A generation wraps after 2^31 reuses of one slot — far beyond any run
/// this library performs.
using EventId = std::uint64_t;

class Engine {
 public:
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  double now() const noexcept { return now_; }

  /// Schedules `fn` to run at absolute time `when` (>= now). Returns a
  /// handle usable with cancel() (timers, timeouts, abandoned retries).
  EventId schedule_at(double when, EventFn fn);

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule_in(double delay, EventFn fn);

  /// Cancels a pending event; returns false if it already ran, was already
  /// cancelled, or never existed. O(1): the slot's generation is bumped and
  /// its closure destroyed immediately; the heap keeps a dead 24-byte POD
  /// entry that is skipped (one generation load) when its time comes. When
  /// dead entries come to outnumber live ones the heap is purged (dead PODs
  /// filtered out, heap rebuilt), so long-running sims that schedule and
  /// cancel timers far beyond their run_until horizon stay bounded.
  bool cancel(EventId id);

  /// Runs events until the calendar empties or `stop()` is called.
  void run();

  /// Runs events with time <= horizon; the clock finishes at exactly
  /// `horizon` (even if the calendar empties earlier or later events remain).
  void run_until(double horizon);

  /// Requests that run()/run_until() return after the current event.
  void stop() noexcept { stopping_ = true; }

  /// Number of events executed so far.
  std::uint64_t executed() const noexcept { return executed_; }

  /// Number of live (scheduled, not cancelled) events.
  std::size_t pending() const noexcept { return live_; }

  /// Number of cancelled events whose dead heap entries have not yet been
  /// consumed (their closures are already destroyed).
  std::size_t cancelled() const noexcept { return stale_; }

 private:
  /// Heap entry: plain data, no closure. `time_bits` is the event time as
  /// an order-preserving integer key (see time_key); `sequence` preserves
  /// the global insertion order for deterministic tie-breaking; `generation`
  /// is compared against the slot's current generation to detect
  /// cancellation with a single load.
  struct HeapEntry {
    std::uint64_t time_bits;
    std::uint64_t sequence;
    std::uint32_t slot;
    std::uint32_t generation;
  };

  /// Simulated time as a totally-ordered integer key. Times are always
  /// >= 0 (enforced by schedule_at, starting from now_ == 0), and for
  /// non-negative IEEE doubles the raw bit pattern compares identically to
  /// the value (+inf included; -0.0 is canonicalized to +0.0 by the
  /// addition; NaN never passes the >= now_ check). Integer keys keep the
  /// heap comparator branch-free, which matters: event times are random,
  /// so a floating-point compare inside the sift loops is an
  /// unpredictable branch per level.
  static std::uint64_t time_key(double time) noexcept {
    std::uint64_t bits;
    const double canonical = time + 0.0;
    std::memcpy(&bits, &canonical, sizeof(bits));
    return bits;
  }
  static double key_time(std::uint64_t bits) noexcept {
    double time;
    std::memcpy(&time, &bits, sizeof(time));
    return time;
  }

  /// Strict total order (all (time, sequence) pairs are distinct), so the
  /// pop sequence — and therefore every simulation result — is independent
  /// of the heap's internal layout. Written with bitwise operators on
  /// integer compares so the whole predicate compiles branch-free.
  static bool earlier(const HeapEntry& a, const HeapEntry& b) noexcept {
    return (a.time_bits < b.time_bits) |
           ((a.time_bits == b.time_bits) & (a.sequence < b.sequence));
  }
  /// Slot-map cell. Generation parity encodes occupancy (even = holding a
  /// scheduled event, odd = free): acquire and release each bump it once,
  /// so every EventId ever handed out carries an even generation and can
  /// only ever match the exact tenancy it was issued for.
  struct Slot {
    InlineEvent fn;
    std::uint32_t generation = 0;
    std::uint32_t next_free = 0;  ///< intrusive free-list link (when free)
  };

  /// Purge threshold: rebuild once dead entries outnumber live ones (i.e.
  /// exceed half the calendar), with a floor so tiny calendars never pay
  /// the O(n) rebuild. The rebuild filters 24-byte PODs — closures were
  /// already destroyed at cancel() time.
  static constexpr std::size_t kMinPurgeSize = 16;

  /// Free-list terminator; also bounds the slot map (a calendar with 2^32-1
  /// concurrently-pending events would exceed memory long before this).
  static constexpr std::uint32_t kNoFreeSlot = 0xffffffffu;

  static EventId pack(std::uint32_t slot, std::uint32_t generation) noexcept {
    return (static_cast<EventId>(generation) << 32) | slot;
  }

  /// Pops and runs the next live event with time <= limit; returns false
  /// if none qualifies. Dead entries up to `limit` are consumed.
  bool step(double limit);

  /// Removes every dead heap entry and rebuilds the heap; O(n) over PODs.
  void purge();

  /// 4-ary heap primitives. A 4-ary layout halves the tree depth of a binary
  /// heap, and both sifts move a "hole" instead of swapping, so each level
  /// costs one 24-byte copy instead of three. The extra per-level compares
  /// stay within two cache lines of children.
  /// Shared body of schedule_at/schedule_in, taking the closure by rvalue
  /// reference so the public by-value entry points forward without an extra
  /// relocation.
  EventId schedule_impl(double when, EventFn&& fn);

  void sift_up(std::size_t pos) noexcept;
  /// `moving` travels as three scalar parameters (registers under the SysV
  /// ABI) — a by-value HeapEntry would be passed through the stack.
  void sift_down(std::size_t pos, std::uint64_t time_bits,
                 std::uint64_t sequence,
                 std::uint64_t slot_and_generation) noexcept;
  void heapify() noexcept;

  /// Returns the packed EventId {generation, slot} of the acquired slot, so
  /// the schedule path never re-derives the generation from the slot map.
  EventId acquire_slot(EventFn&& fn);
  void release_slot(std::uint32_t index) noexcept;

  /// Publishes executed/cancelled deltas to the process-wide metrics
  /// registry ("engine.events" / "engine.cancels"). Called when a run ends
  /// and at destruction, so concurrently-replicated engines each add their
  /// own delta instead of racing on per-step increments.
  void flush_metrics() noexcept;

  // 4-ary min-heap over (time, sequence) — a plain vector (rather than
  // std::priority_queue) so purge() can filter it.
  std::vector<HeapEntry> queue_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoFreeSlot;  ///< head of the intrusive free list
  std::size_t live_ = 0;     ///< slots currently holding a scheduled event
  std::size_t stale_ = 0;    ///< dead heap entries not yet consumed
  double now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancels_ = 0;
  std::uint64_t flushed_executed_ = 0;
  std::uint64_t flushed_cancels_ = 0;
  bool stopping_ = false;
  metrics::Counter* events_metric_;
  metrics::Counter* cancels_metric_;
};

}  // namespace vmcons::sim
