// Discrete-event simulation engine.
//
// A minimal, fast calendar: events are (time, sequence, closure) tuples in a
// binary heap. Ties break by insertion order, which makes runs fully
// deterministic. The engine owns no model state; models (clusters, workload
// drivers) capture what they need in the closures.
//
// Time is in seconds of simulated time, starting at 0.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

namespace vmcons::sim {

using EventFn = std::function<void()>;

/// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  double now() const noexcept { return now_; }

  /// Schedules `fn` to run at absolute time `when` (>= now). Returns a
  /// handle usable with cancel() (timers, timeouts, abandoned retries).
  EventId schedule_at(double when, EventFn fn);

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule_in(double delay, EventFn fn);

  /// Cancels a pending event; returns false if it already ran, was already
  /// cancelled, or never existed. Cancellation is lazy: normally O(1), the
  /// closure is skipped (not run) when its time comes. When cancelled
  /// entries come to outnumber live ones the calendar is compacted (dead
  /// entries removed, heap rebuilt), so long-running sims that schedule and
  /// cancel timers far beyond their run_until horizon stay bounded.
  bool cancel(EventId id);

  /// Runs events until the calendar empties or `stop()` is called.
  void run();

  /// Runs events with time <= horizon; the clock finishes at exactly
  /// `horizon` (even if the calendar empties earlier or later events remain).
  void run_until(double horizon);

  /// Requests that run()/run_until() return after the current event.
  void stop() noexcept { stopping_ = true; }

  /// Number of events executed so far.
  std::uint64_t executed() const noexcept { return executed_; }

  /// Number of live (scheduled, not cancelled) events.
  std::size_t pending() const noexcept { return live_.size(); }

  /// Number of pending events that have been cancelled.
  std::size_t cancelled() const noexcept { return cancelled_.size(); }

 private:
  struct Event {
    double time;
    std::uint64_t sequence;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.sequence > b.sequence;
    }
  };

  /// Pops and runs the next live event with time <= limit; returns false
  /// if none qualifies. Cancelled events up to `limit` are consumed.
  bool step(double limit);

  /// Removes every lazily-cancelled entry and rebuilds the heap; O(n).
  void compact();

  // Min-heap over (time, sequence) via std::push_heap/pop_heap — a plain
  // vector (rather than std::priority_queue) so compact() can filter it.
  std::vector<Event> queue_;
  std::unordered_set<EventId> live_;       // scheduled, not run/cancelled
  std::unordered_set<EventId> cancelled_;  // cancelled, not yet popped
  double now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t executed_ = 0;
  bool stopping_ = false;
};

}  // namespace vmcons::sim
